"""End-to-end system tests: the paper's headline behaviours at small scale."""

import pytest

from repro.schedulers.registry import make_policy
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.system import CmpSystem
from repro.workloads.spec2006 import SPEC2006
from repro.workloads.synthetic import generate_trace


@pytest.fixture(scope="module")
def runner_2core():
    return ExperimentRunner(
        SystemConfig(num_cores=2), instruction_budget=8_000, seed=0
    )


@pytest.fixture(scope="module")
def runner_4core():
    return ExperimentRunner(
        SystemConfig(num_cores=4), instruction_budget=8_000, seed=0
    )


class TestCmpSystem:
    def test_single_core_completes(self):
        config = SystemConfig(num_cores=1)
        trace = generate_trace(SPEC2006["mcf"], config.mapper(), 3_000)
        system = CmpSystem(config, [trace], make_policy("fr-fcfs", 1), 3_000)
        snapshots = system.run()
        assert snapshots[0].instructions >= 3_000
        assert snapshots[0].cycles > 0
        assert snapshots[0].memory_stall_cycles > 0

    def test_all_cores_reach_budget(self):
        config = SystemConfig(num_cores=2)
        mapper = config.mapper()
        traces = [
            generate_trace(SPEC2006[name], mapper, 3_000, partition=i,
                           num_partitions=2)
            for i, name in enumerate(["mcf", "libquantum"])
        ]
        system = CmpSystem(config, traces, make_policy("fr-fcfs", 2), 3_000)
        for snapshot in system.run():
            assert snapshot.instructions >= 3_000

    def test_budget_list_and_validation(self):
        config = SystemConfig(num_cores=2)
        mapper = config.mapper()
        traces = [
            generate_trace(SPEC2006["mcf"], mapper, 2_000, partition=i,
                           num_partitions=2)
            for i in range(2)
        ]
        with pytest.raises(ValueError):
            CmpSystem(config, traces, make_policy("fcfs", 2), [1_000])
        with pytest.raises(ValueError):
            CmpSystem(config, traces, make_policy("fcfs", 2), 1_000,
                      mlp_limits=[1])

    def test_more_traces_than_cores_rejected(self):
        config = SystemConfig(num_cores=1)
        mapper = config.mapper()
        traces = [
            generate_trace(SPEC2006["mcf"], mapper, 1_000, partition=i,
                           num_partitions=2)
            for i in range(2)
        ]
        with pytest.raises(ValueError):
            CmpSystem(config, traces, make_policy("fcfs", 2), 1_000)


class TestSlowdownSanity:
    def test_alone_run_is_baseline(self, runner_2core):
        """A thread running truly alone has slowdown ~1 by construction."""
        result_alone = runner_2core.alone_snapshot("mcf", 0, 2)
        assert result_alone.mcpi > 0

    def test_shared_runs_slow_threads_down(self, runner_2core):
        result = runner_2core.run_workload(["mcf", "libquantum"], "fr-fcfs")
        for thread in result.threads:
            assert thread.slowdown > 1.0

    def test_interference_is_mutual_but_asymmetric(self, runner_2core):
        result = runner_2core.run_workload(["mcf", "GemsFDTD"], "fr-fcfs")
        slowdowns = {t.name: t.slowdown for t in result.threads}
        assert all(s > 1.0 for s in slowdowns.values())


class TestHeadlineResult:
    """The paper's core claim, at reduced scale: STFM reduces unfairness
    versus FR-FCFS without sacrificing (much) throughput."""

    def test_stfm_fairer_than_frfcfs_on_asymmetric_pair(self, runner_2core):
        frfcfs = runner_2core.run_workload(["mcf", "dealII"], "fr-fcfs")
        stfm = runner_2core.run_workload(["mcf", "dealII"], "stfm")
        assert stfm.unfairness < frfcfs.unfairness

    def test_stfm_fairest_on_intensive_4core_mix(self, runner_4core):
        workload = ["mcf", "libquantum", "GemsFDTD", "astar"]
        results = runner_4core.run_policies(
            workload, ["fr-fcfs", "nfq", "stfm"]
        )
        assert results["stfm"].unfairness < results["fr-fcfs"].unfairness
        assert results["stfm"].unfairness < results["nfq"].unfairness

    def test_stfm_throughput_competitive(self, runner_4core):
        workload = ["mcf", "libquantum", "GemsFDTD", "astar"]
        frfcfs = runner_4core.run_workload(workload, "fr-fcfs")
        stfm = runner_4core.run_workload(workload, "stfm")
        assert stfm.weighted_speedup > 0.85 * frfcfs.weighted_speedup

    def test_frfcfs_favors_row_buffer_locality(self, runner_4core):
        """libquantum (98.4% RB hits, streaming) is the least slowed
        thread under FR-FCFS (Figures 1 and 6)."""
        workload = ["mcf", "libquantum", "GemsFDTD", "astar"]
        result = runner_4core.run_workload(workload, "fr-fcfs")
        slowdowns = {t.name: t.slowdown for t in result.threads}
        assert slowdowns["libquantum"] == min(slowdowns.values())


class TestThreadWeights:
    def test_weighted_thread_prioritized(self, runner_4core):
        workload = ["libquantum", "cactusADM", "astar", "omnetpp"]
        equal = runner_4core.run_workload(workload, "stfm")
        weighted = runner_4core.run_workload(
            workload, "stfm", {"weights": [1.0, 16.0, 1.0, 1.0]}
        )
        name = "cactusADM"
        equal_slowdown = next(t for t in equal.threads if t.name == name)
        heavy_slowdown = next(t for t in weighted.threads if t.name == name)
        assert heavy_slowdown.slowdown < equal_slowdown.slowdown


class TestRunnerMechanics:
    def test_alone_cache_hit(self, runner_2core):
        first = runner_2core.alone_snapshot("hmmer", 0, 2)
        second = runner_2core.alone_snapshot("hmmer", 0, 2)
        assert first is second

    def test_traces_shared_between_alone_and_shared(self, runner_2core):
        trace = runner_2core.trace_for("hmmer", 0, 2)
        assert runner_2core.trace_for("hmmer", 0, 2) is trace

    def test_budget_extension_for_light_benchmarks(self, runner_2core):
        assert runner_2core.budget_for("povray") > runner_2core.budget_for("mcf")
        assert runner_2core.budget_for("mcf") == 8_000

    def test_workload_validation(self, runner_2core):
        with pytest.raises(ValueError):
            runner_2core.run_workload([])
        with pytest.raises(ValueError):
            runner_2core.run_workload(["mcf", "mcf", "mcf"])

    def test_extras_present(self, runner_2core):
        result = runner_2core.run_workload(["mcf", "hmmer"], "stfm")
        assert "cycles" in result.extras
        assert 0.0 <= result.extras["fairness_rule_fraction"] <= 1.0
