"""Tests for the TInterference update rules (Section 3.2.2)."""

import pytest

from repro.controller.controller import ScanInfo
from repro.core.estimator import InterferenceEstimator
from repro.core.registers import StfmRegisters
from repro.core.stfm import StfmPolicy
from repro.dram.commands import CommandCandidate, CommandKind
from tests.conftest import ControllerHarness


def make_setup(num_threads: int = 3, gamma: float = 0.5):
    policy = StfmPolicy(num_threads, gamma=gamma)
    harness = ControllerHarness(policy=policy, num_threads=num_threads)
    estimator = policy.estimator
    return harness, policy.registers, estimator


def candidate_for(harness, thread, bank, row, kind, column=0):
    request = harness.controller.make_request(
        thread, harness.address(bank, row, column), False, harness.now
    )
    bank_obj = harness.controller.channels[0].banks[bank]
    return CommandCandidate(kind, request, bank, bank_obj.command_latency(kind))


class TestBankInterference:
    def test_waiting_thread_charged_amortized_latency(self):
        harness, registers, estimator = make_setup()
        # Thread 1 waits in bank 0 only: BankWaitingParallelism = 1.
        harness.submit(1, bank=0, row=5)
        cand = candidate_for(harness, 0, 0, 1, CommandKind.READ)
        scan = ScanInfo(0, waiting_threads_by_bank={0: {0, 1}})
        estimator.on_command_issued(cand, scan, 0)
        # Latency(R) / (gamma * 1) = (cl + burst) / 0.5, plus the bus term
        # tBus because a column was issued and thread 1 waits on a column?
        # thread 1's request needs an activate, so no bus term applies.
        timing = harness.timing
        expected = (timing.cl + timing.burst) / 0.5
        assert registers.threads[1].t_interference == pytest.approx(expected)

    def test_issuer_not_charged(self):
        harness, registers, estimator = make_setup()
        harness.submit(0, bank=0, row=5)
        cand = candidate_for(harness, 0, 0, 1, CommandKind.ACTIVATE)
        scan = ScanInfo(0, waiting_threads_by_bank={0: {0}})
        estimator.on_command_issued(cand, scan, 0)
        assert registers.threads[0].t_interference == 0.0

    def test_amortized_across_waiting_banks(self):
        harness, registers, estimator = make_setup()
        # Thread 1 waits in two banks: the charge halves.
        harness.submit(1, bank=0, row=5)
        harness.submit(1, bank=3, row=5)
        cand = candidate_for(harness, 0, 0, 1, CommandKind.PRECHARGE)
        scan = ScanInfo(0, waiting_threads_by_bank={0: {1}})
        estimator.on_command_issued(cand, scan, 0)
        timing = harness.timing
        expected = timing.rp / (0.5 * 2)
        assert registers.threads[1].t_interference == pytest.approx(expected)

    def test_gamma_scaling(self):
        harness, registers, estimator = make_setup(gamma=1.0)
        harness.submit(1, bank=0, row=5)
        cand = candidate_for(harness, 0, 0, 1, CommandKind.PRECHARGE)
        scan = ScanInfo(0, waiting_threads_by_bank={0: {1}})
        estimator.on_command_issued(cand, scan, 0)
        assert registers.threads[1].t_interference == pytest.approx(
            harness.timing.rp
        )

    def test_other_banks_not_charged(self):
        harness, registers, estimator = make_setup()
        harness.submit(1, bank=4, row=5)
        cand = candidate_for(harness, 0, 0, 1, CommandKind.READ)
        scan = ScanInfo(0, waiting_threads_by_bank={0: set()})
        estimator.on_command_issued(cand, scan, 0)
        assert registers.threads[1].t_interference == 0.0


class TestBusInterference:
    def test_tbus_charged_to_column_waiters(self):
        harness, registers, estimator = make_setup()
        cand = candidate_for(harness, 0, 0, 1, CommandKind.READ)
        scan = ScanInfo(0, waiting_column_threads={1, 2})
        estimator.on_command_issued(cand, scan, 0)
        assert registers.threads[1].t_interference == pytest.approx(
            harness.timing.t_bus
        )
        assert registers.threads[2].t_interference == pytest.approx(
            harness.timing.t_bus
        )

    def test_row_commands_do_not_occupy_the_bus(self):
        harness, registers, estimator = make_setup()
        cand = candidate_for(harness, 0, 0, 1, CommandKind.ACTIVATE)
        scan = ScanInfo(0, waiting_column_threads={1})
        estimator.on_command_issued(cand, scan, 0)
        assert registers.threads[1].t_interference == 0.0


class TestOwnThreadExtraLatency:
    def test_conflict_that_would_have_hit_alone(self):
        """The paper's example: R2 would be a row hit alone but is a
        conflict in the shared system -> charge ExtraLatency = tRP+tRCD
        divided by BankAccessParallelism."""
        harness, registers, estimator = make_setup()
        registers.record_row(0, 0, 1)  # thread 0 last accessed row 1
        cand = candidate_for(harness, 0, 0, 1, CommandKind.READ)
        cand.request.got_precharge = True  # serviced as a conflict
        cand.request.got_activate = True
        estimator.on_command_issued(cand, ScanInfo(0), 0)
        timing = harness.timing
        assert registers.threads[0].t_interference == pytest.approx(
            timing.rp + timing.rcd
        )

    def test_negative_interference_for_lucky_hit(self):
        """A hit that would have been a conflict alone (footnote 10)."""
        harness, registers, estimator = make_setup()
        registers.record_row(0, 0, 9)  # alone it would conflict (row 9 open)
        cand = candidate_for(harness, 0, 0, 1, CommandKind.READ)
        estimator.on_command_issued(cand, ScanInfo(0), 0)
        timing = harness.timing
        assert registers.threads[0].t_interference == pytest.approx(
            -(timing.rp + timing.rcd)
        )

    def test_first_access_compared_against_closed_row(self):
        harness, registers, estimator = make_setup()
        cand = candidate_for(harness, 0, 0, 1, CommandKind.READ)
        cand.request.got_activate = True  # serviced as row-closed
        estimator.on_command_issued(cand, ScanInfo(0), 0)
        # Alone it would also have been closed: no extra latency.
        assert registers.threads[0].t_interference == 0.0

    def test_amortized_by_bank_access_parallelism(self):
        harness, registers, estimator = make_setup()
        # Two requests of thread 0 in service -> parallelism 2.
        harness.controller._bank_access_parallelism[0] = 2
        registers.record_row(0, 0, 1)
        cand = candidate_for(harness, 0, 0, 1, CommandKind.READ)
        cand.request.got_precharge = True
        estimator.on_command_issued(cand, ScanInfo(0), 0)
        timing = harness.timing
        assert registers.threads[0].t_interference == pytest.approx(
            (timing.rp + timing.rcd) / 2
        )

    def test_last_row_updated_after_service(self):
        harness, registers, estimator = make_setup()
        cand = candidate_for(harness, 0, 2, 7, CommandKind.READ)
        estimator.on_command_issued(cand, ScanInfo(0), 0)
        assert registers.last_row(0, 2) == 7


class TestValidation:
    def test_gamma_must_be_positive(self):
        harness, registers, _ = make_setup()
        with pytest.raises(ValueError):
            InterferenceEstimator(registers, harness.controller, gamma=0.0)
