"""End-to-end back-pressure behaviour and NFQ bandwidth shares."""

import pytest

from repro.schedulers.nfq import NfqPolicy
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from tests.conftest import ControllerHarness


class TestRequestBufferBackPressure:
    def test_submit_rejected_when_read_buffer_full(self):
        harness = ControllerHarness(read_capacity=4)
        for row in range(4):
            harness.submit(0, bank=0, row=row)
        request = harness.controller.make_request(
            0, harness.address(0, 99), False, harness.now
        )
        assert not harness.controller.submit(request, harness.now)
        # Draining the queue reopens admission.
        harness.run_until_done()
        assert harness.controller.submit(request, harness.now)

    def test_small_buffer_system_still_completes(self):
        """A 4-entry request buffer forces constant back-pressure; the
        full system must still make forward progress."""
        config = SystemConfig(num_cores=2, read_capacity=4, write_capacity=2)
        runner = ExperimentRunner(config, instruction_budget=3_000)
        result = runner.run_workload(["mcf", "libquantum"], "fr-fcfs")
        for thread in result.threads:
            assert thread.ipc_shared > 0

    def test_tiny_write_buffer_system_completes(self):
        config = SystemConfig(
            num_cores=2, write_capacity=2
        )
        runner = ExperimentRunner(config, instruction_budget=3_000)
        result = runner.run_workload(["mcf", "lbm"], "stfm")
        for thread in result.threads:
            assert thread.ipc_shared > 0


class TestNfqShares:
    def _latencies_with_shares(self, shares):
        harness = ControllerHarness(
            policy=NfqPolicy(2, shares=shares), num_threads=2
        )
        # Both threads contend for the same two banks with row misses.
        for i in range(10):
            harness.submit(0, bank=i % 2, row=10 + i)
            harness.submit(1, bank=i % 2, row=40 + i)
        done = harness.run_until_done()
        by_thread = {0: [], 1: []}
        for request in done:
            by_thread[request.thread_id].append(
                request.completed_at - request.arrival
            )
        return [sum(v) / len(v) for v in (by_thread[0], by_thread[1])]

    def test_equal_shares_near_equal_latency(self):
        a, b = self._latencies_with_shares([1.0, 1.0])
        assert a / b == pytest.approx(1.0, abs=0.4)

    def test_heavy_share_gets_served_faster(self):
        equal_a, _ = self._latencies_with_shares([1.0, 1.0])
        heavy_a, light_b = self._latencies_with_shares([8.0, 1.0])
        assert heavy_a < light_b
        assert heavy_a < equal_a


class TestMakeRequest:
    def test_decodes_coordinates(self):
        harness = ControllerHarness(num_channels=2)
        address = harness.address(bank=5, row=321, column=7, channel=1)
        request = harness.controller.make_request(3, address, True, 100)
        assert request.thread_id == 3
        assert request.is_write
        assert request.coords.bank == 5
        assert request.coords.row == 321
        assert request.coords.column == 7
        assert request.coords.channel == 1
