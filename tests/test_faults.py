"""Tests for repro.faults and the hardening it exercises.

Covers the deterministic fault plan itself (parsing, replay-exact
decisions, env activation), the engine under injected crashes / hangs /
timeouts (backoff, SIGTERM→SIGKILL reaping, serial degradation,
clean-room fallback), the store's checksum + quarantine + best-effort
writes, the service watchdog and worker-fault containment, the client's
bounded retries, and the headline acceptance criterion: a fig3 sweep
under ``crash=0.2,hang=0.05,corrupt=0.1 seed=7`` completes bit-identical
to the fault-free run, with a replayed run reproducing the identical
fault counters.
"""

from __future__ import annotations

import json
import signal
import tempfile
import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro import faults
from repro.engine import (
    EngineOptions,
    JobExecutor,
    JobFailedError,
    ResultStore,
    engine_options,
    register_job_kind,
    session_report,
)
from repro.engine.store import QUARANTINE_DIR, payload_checksum
from repro.experiments import run_experiment
from repro.experiments.base import resolve_scale

from tests.test_service import FAST_WORKLOAD, running_service


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    """No real cache dir, no leftover fault plan from the environment."""
    monkeypatch.setenv("STFM_SIM_CACHE_DIR", str(tmp_path / "default-store"))
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)


@dataclass(frozen=True)
class ChaosJob:
    """A trivially-fast job for exercising injection paths (tests only)."""

    name: str
    sleep: float = 0.0
    ignore_sigterm: bool = False

    kind: ClassVar[str] = "chaos-test"

    def cache_key(self) -> str:
        return f"chaos-{self.name}-{self.sleep:g}-{self.ignore_sigterm}"

    def describe(self) -> str:
        return f"chaos {self.name}"


def _run_chaos(job: ChaosJob) -> dict:
    if job.ignore_sigterm:
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    if job.sleep:
        time.sleep(job.sleep)
    return {"name": job.name, "value": len(job.name)}


register_job_kind(ChaosJob.kind, _run_chaos)


# -- the fault plan ----------------------------------------------------------


class TestFaultPlan:
    def test_parse_rates_and_seed(self):
        plan = faults.parse_faults("crash=0.2,hang=0.05 corrupt=0.1 seed=7")
        assert plan.rates == {"crash": 0.2, "hang": 0.05, "corrupt": 0.1}
        assert plan.seed == 7
        assert plan.describe() == "crash=0.2 hang=0.05 corrupt=0.1 seed=7"

    @pytest.mark.parametrize(
        "spec",
        ["bogus=0.5", "crash=2", "crash=-0.1", "crash", "crash=x",
         "seed=x", "", "seed=3"],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_faults(spec)

    def test_decisions_are_pure_and_replayable(self):
        first = faults.parse_faults("crash=0.5 seed=7")
        second = faults.parse_faults("crash=0.5 seed=7")
        keys = [f"job-{i}:1" for i in range(200)]
        seq_a = [first.fires("crash", key) for key in keys]
        seq_b = [second.fires("crash", key) for key in keys]
        assert seq_a == seq_b
        assert first.log == second.log
        assert True in seq_a and False in seq_a  # rate 0.5 hits both
        # A different seed makes different decisions somewhere.
        other = faults.parse_faults("crash=0.5 seed=8")
        assert seq_a != [other.fires("crash", key) for key in keys]

    def test_rate_extremes_and_counters(self):
        plan = faults.FaultPlan({"crash": 1.0, "corrupt": 0.0})
        assert all(plan.fires("crash", f"k{i}") for i in range(10))
        assert not any(plan.fires("corrupt", f"k{i}") for i in range(10))
        assert plan.fires("hang", "k") is False  # unconfigured site
        assert plan.counters == {"crash": 10}
        assert plan.total_fired() == 10

    def test_env_activation_and_module_hooks(self, monkeypatch):
        assert faults.active_plan() is None
        assert faults.fires("crash", "k") is False
        assert faults.injected_total() == 0
        monkeypatch.setenv(faults.FAULTS_ENV, "crash=1.0")
        plan = faults.active_plan()
        assert plan is not None and plan.rates == {"crash": 1.0}
        assert faults.fires("crash", "k") is True
        assert faults.injected_total() == 1
        # Same env string → same plan object (counters persist) ...
        assert faults.active_plan() is plan
        # ... while changing the string swaps in a fresh plan.
        monkeypatch.setenv(faults.FAULTS_ENV, "crash=1.0 seed=1")
        assert faults.active_plan() is not plan
        assert faults.injected_total() == 0

    def test_install_validates_before_exporting(self, monkeypatch):
        with pytest.raises(faults.FaultSpecError):
            faults.install("bogus=1")
        assert faults.active_plan() is None
        # Pre-seed via monkeypatch so install's direct env write is
        # rolled back after the test.
        monkeypatch.setenv(faults.FAULTS_ENV, "write=0.0")
        plan = faults.install("write=1.0 seed=3")
        assert plan.rates == {"write": 1.0} and plan.seed == 3
        assert faults.active_plan() is plan


# -- engine hardening --------------------------------------------------------


class TestEngineUnderInjection:
    def test_injected_crashes_end_in_clean_room_fallback(self, monkeypatch):
        # Every attempt crashes (rate 1.0), so the retry budget burns
        # out and the final injection-free attempt completes the job.
        monkeypatch.setenv(faults.FAULTS_ENV, "crash=1.0")
        executor = JobExecutor(jobs=2, retries=1, backoff=0.01)
        payloads = executor.run([ChaosJob("crashy")])
        assert payloads[ChaosJob("crashy").cache_key()]["name"] == "crashy"
        assert executor.report.retries == 1
        assert executor.report.fallbacks == 1
        assert executor.report.jobs_failed == 0

    def test_injected_hang_is_cut_by_the_job_timeout(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "hang=1.0")
        executor = JobExecutor(jobs=2, retries=0, timeout=0.5, backoff=0.01)
        payloads = executor.run([ChaosJob("sleepy")])
        assert payloads[ChaosJob("sleepy").cache_key()]["name"] == "sleepy"
        assert executor.report.fallbacks == 1

    def test_injected_timeout_declares_a_healthy_worker_dead(
        self, monkeypatch
    ):
        monkeypatch.setenv(faults.FAULTS_ENV, "timeout=1.0")
        executor = JobExecutor(jobs=2, retries=0, backoff=0.01)
        payloads = executor.run([ChaosJob("framed")])
        assert payloads[ChaosJob("framed").cache_key()]["name"] == "framed"
        assert executor.report.fallbacks == 1

    def test_real_crashers_still_fail_under_injection(self, monkeypatch):
        # The clean-room fallback must not mask deterministic crashes:
        # a job that ignores injection and burns the fallback too is
        # still a permanent failure.
        monkeypatch.setenv(faults.FAULTS_ENV, "timeout=1.0")
        executor = JobExecutor(
            jobs=2, retries=0, timeout=0.4, backoff=0.01
        )
        job = ChaosJob("wedged", sleep=30.0)
        with pytest.raises(JobFailedError, match="timed out"):
            executor.run([job])
        assert executor.report.fallbacks == 1
        assert executor.report.jobs_failed == 1

    def test_reap_escalates_to_sigkill(self, monkeypatch):
        # A worker that ignores SIGTERM used to hang _reap forever on
        # proc.join(); now the bounded join escalates to kill().
        monkeypatch.setattr("repro.engine.executor._REAP_GRACE", 0.5)
        executor = JobExecutor(jobs=2, retries=0, timeout=0.3)
        job = ChaosJob("stubborn", sleep=60.0, ignore_sigterm=True)
        started = time.perf_counter()
        with pytest.raises(JobFailedError, match="timed out"):
            executor.run([job])
        assert time.perf_counter() - started < 20.0

    def test_spawn_failure_degrades_to_serial(self, monkeypatch):
        def broken_spawn(self, ctx, job, attempt=1, inject=True):
            raise OSError(11, "Resource temporarily unavailable")

        monkeypatch.setattr(JobExecutor, "_spawn", broken_spawn)
        executor = JobExecutor(jobs=2)
        jobs = [ChaosJob("a"), ChaosJob("b")]
        payloads = executor.run(jobs)
        assert {p["name"] for p in payloads.values()} == {"a", "b"}
        assert executor.report.jobs_run == 2
        assert executor.report.jobs_failed == 0

    def test_backoff_delay_is_deterministic(self):
        executor = JobExecutor(jobs=2, backoff=0.1, backoff_cap=1.0)
        first = executor._backed_off("key", None, 3)
        second = executor._backed_off("key", None, 3)
        delay_a = first.not_before - time.perf_counter()
        delay_b = second.not_before - time.perf_counter()
        assert abs(delay_a - delay_b) < 0.05
        # attempt 3 → base 0.1 * 2^2 = 0.4, jittered into [0.2, 0.6).
        assert 0.15 < delay_a < 0.65


# -- store hardening ---------------------------------------------------------


class TestStoreIntegrity:
    KEY = "abc123feed"
    PAYLOAD = {"rows": [[1, 2.5], [3, 4.0]], "policy": "stfm"}

    def _store(self, tmp_path) -> ResultStore:
        store = ResultStore(tmp_path / "store")
        assert store.put(self.KEY, self.PAYLOAD, describe="t", kind="k")
        return store

    def test_checksum_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        assert store.get(self.KEY) == self.PAYLOAD
        entry = json.loads(store._path(self.KEY).read_text())
        assert entry["sha256"] == payload_checksum(self.PAYLOAD)

    @pytest.mark.parametrize(
        "label,corruptor",
        [
            ("truncated", lambda e: json.dumps(e)[: len(json.dumps(e)) // 2]),
            ("bad-checksum", lambda e: json.dumps({**e, "sha256": "0" * 64})),
            ("missing-payload",
             lambda e: json.dumps({k: v for k, v in e.items()
                                   if k != "payload"})),
        ],
    )
    def test_corrupt_entry_is_quarantined_miss(
        self, tmp_path, label, corruptor
    ):
        store = self._store(tmp_path)
        path = store._path(self.KEY)
        path.write_text(corruptor(json.loads(path.read_text())))
        assert store.get(self.KEY) is None
        assert store.quarantined == 1
        assert not path.exists()
        assert (store.root / QUARANTINE_DIR / path.name).exists()
        # Quarantined evidence is invisible to size accounting.
        assert len(store) == 0
        assert store.stats().entries == 0

    def test_legacy_entry_without_checksum_still_hits(self, tmp_path):
        store = self._store(tmp_path)
        path = store._path(self.KEY)
        entry = json.loads(path.read_text())
        del entry["sha256"]
        path.write_text(json.dumps(entry))
        assert store.get(self.KEY) == self.PAYLOAD

    def test_corrupt_entry_resimulates_identically(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = ChaosJob("victim")
        baseline = JobExecutor(jobs=1, store=store).run([job])
        path = store._path(job.cache_key())
        path.write_text("not json{")
        again = JobExecutor(jobs=1, store=store).run([job])
        assert again == baseline
        assert store.quarantined == 1
        assert store.get(job.cache_key()) == baseline[job.cache_key()]

    def test_injected_read_corruption(self, tmp_path, monkeypatch):
        store = self._store(tmp_path)
        monkeypatch.setenv(faults.FAULTS_ENV, "corrupt=1.0")
        assert store.get(self.KEY) is None
        assert store.quarantined == 1

    def test_injected_write_failure_is_best_effort(
        self, tmp_path, monkeypatch
    ):
        # Satellite regression: a failed put must not fail the batch
        # after the simulation already succeeded.
        monkeypatch.setenv(faults.FAULTS_ENV, "write=1.0")
        store = ResultStore(tmp_path / "store")
        executor = JobExecutor(jobs=1, store=store)
        payloads = executor.run([ChaosJob("unsaved")])
        assert payloads[ChaosJob("unsaved").cache_key()]["name"] == "unsaved"
        assert store.put_errors == 1
        assert len(store) == 0

    def test_readonly_cache_dir_is_best_effort(self, tmp_path, monkeypatch):
        # Simulated read-only directory (chmod is unreliable as root):
        # the tmp-file creation raises EROFS.
        store = ResultStore(tmp_path / "store")

        def readonly_mkstemp(*args, **kwargs):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(tempfile, "mkstemp", readonly_mkstemp)
        assert store.put(self.KEY, self.PAYLOAD) is False
        assert store.put_errors == 1
        assert store.get(self.KEY) is None


# -- service + client hardening ----------------------------------------------


LONG_WORKLOAD = dict(FAST_WORKLOAD, budget=60_000)


class TestServiceUnderInjection:
    def test_watchdog_fails_hung_jobs_and_pool_survives(self, tmp_path):
        # Two workers: the abandoned thread of the hung job keeps one
        # busy until the engine finishes underneath, the other picks up
        # new work immediately.
        with running_service(tmp_path, job_timeout=0.4, workers=2) as (
            service, client,
        ):
            hung = client.wait(client.submit(LONG_WORKLOAD)["id"], timeout=60)
            assert hung["status"] == "failed"
            assert "watchdog" in hung["error"]
            assert service.pool.watchdog_timeouts == 1
            # The worker slot is free again: a fast job still completes.
            ok = client.wait(client.submit(FAST_WORKLOAD)["id"], timeout=60)
            assert ok["status"] == "done"
            metrics = client.metrics()
            assert "stfm_service_watchdog_timeouts_total 1" in metrics

    def test_injected_worker_fault_marks_failed(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "service=1.0")
        with running_service(tmp_path) as (_service, client):
            view = client.wait(client.submit(FAST_WORKLOAD)["id"], timeout=60)
            assert view["status"] == "failed"
            assert "injected service worker fault" in view["error"]
            metrics = client.metrics()
            assert "stfm_faults_injected_total" in metrics

    def test_client_drop_retries_are_bounded(self, monkeypatch):
        from repro.service.client import ServiceClient

        monkeypatch.setenv(faults.FAULTS_ENV, "drop=1.0")
        client = ServiceClient(
            "http://127.0.0.1:1", retries=2, backoff=0.01
        )
        with pytest.raises(ConnectionError, match="injected"):
            client.request("GET", "/healthz")
        assert faults.injected_total() == 3  # retries + 1 attempts

    def test_client_drop_recovers_within_budget(self, tmp_path, monkeypatch):
        # drop=0.5 seed=4 drops the first two attempts of each call and
        # lets the third through: the retry budget absorbs the faults
        # and every call below still succeeds end to end.
        with running_service(tmp_path, workers=0) as (_service, client):
            client.retries, client.backoff = 3, 0.01
            monkeypatch.setenv(faults.FAULTS_ENV, "drop=0.5,seed=4")
            for _ in range(5):
                assert client.health()["status"] == "ok"
            assert faults.injected_total() > 0

    def test_429_honors_retry_after(self, monkeypatch):
        from repro.service import client as client_module

        client = client_module.ServiceClient(retries=2)
        responses = [
            (429, {"retry-after": "3"}, {"error": "full"}),
            (429, {"retry-after": "2"}, {"error": "full"}),
            (202, {}, {"id": "j-1", "status": "queued"}),
        ]
        monkeypatch.setattr(
            client, "_request_once",
            lambda method, path, body=None, headers=None: responses.pop(0),
        )
        sleeps: list[float] = []
        monkeypatch.setattr(
            client_module.time, "sleep", lambda s: sleeps.append(s)
        )
        view = client.submit({"kind": "experiment", "experiment": "fig3"})
        assert view["id"] == "j-1"
        assert sleeps == [3.0, 2.0]

    def test_429_still_raises_when_budget_burns_out(self, monkeypatch):
        from repro.service import client as client_module
        from repro.service.client import BackpressureError

        client = client_module.ServiceClient(retries=1)
        monkeypatch.setattr(
            client, "_request_once",
            lambda method, path, body=None, headers=None: (
                429, {"retry-after": "1"}, {"error": "full"}
            ),
        )
        monkeypatch.setattr(client_module.time, "sleep", lambda s: None)
        with pytest.raises(BackpressureError):
            client.submit({"kind": "experiment", "experiment": "fig3"})


# -- the headline invariant --------------------------------------------------


CHAOS_SPEC = "crash=0.2,hang=0.05,corrupt=0.1,seed=7"


class TestChaosEndToEnd:
    def test_fig3_chaos_run_is_bit_identical_and_replays(
        self, tmp_path, monkeypatch
    ):
        """The PR's acceptance criterion."""
        scale = resolve_scale("tiny")
        with engine_options(
            EngineOptions(jobs=1, cache_dir=str(tmp_path / "clean"))
        ):
            clean = run_experiment("fig3", scale=scale)

        chaos_store = ResultStore(tmp_path / "chaos")
        chaos_opts = EngineOptions(
            jobs=2, store=chaos_store, timeout=2.0, retries=1
        )
        monkeypatch.setenv(faults.FAULTS_ENV, CHAOS_SPEC)
        before = session_report().snapshot()
        with engine_options(chaos_opts):
            chaos = run_experiment("fig3", scale=scale)
        first = session_report().since(before)

        # Bit-identical despite injected crashes/hangs, with the retry
        # machinery demonstrably exercised.
        assert chaos.rows == clean.rows
        assert first.retries + first.fallbacks > 0
        assert first.jobs_failed == 0

        # Replay: an equivalent spec (fresh plan, same seed) reproduces
        # the identical fault-driven retry/fallback counts.
        monkeypatch.setenv(faults.FAULTS_ENV, CHAOS_SPEC + " ")
        replay_store = ResultStore(tmp_path / "replay")
        before = session_report().snapshot()
        with engine_options(
            EngineOptions(jobs=2, store=replay_store, timeout=2.0, retries=1)
        ):
            replayed = run_experiment("fig3", scale=scale)
        second = session_report().since(before)
        assert replayed.rows == clean.rows
        assert (second.retries, second.fallbacks) == (
            first.retries, first.fallbacks
        )

        # A warm rerun consults the store: injected read corruption
        # quarantines entries, re-simulates them, and the results are
        # still bit-identical.
        monkeypatch.setenv(faults.FAULTS_ENV, CHAOS_SPEC)
        with engine_options(chaos_opts):
            warm = run_experiment("fig3", scale=scale)
        assert warm.rows == clean.rows
        assert chaos_store.quarantined > 0
