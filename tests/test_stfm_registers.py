"""Tests for STFM's register file (Table 1) and slowdown computation."""

import pytest

from repro.core.registers import SLOWDOWN_CAP, StfmRegisters


class TestConstruction:
    def test_default_weights(self):
        registers = StfmRegisters(4)
        assert [t.weight for t in registers.threads] == [1.0] * 4

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            StfmRegisters(2, weights=[1.0])
        with pytest.raises(ValueError):
            StfmRegisters(2, weights=[1.0, -1.0])


class TestSlowdown:
    def test_no_stall_time_means_no_slowdown(self):
        registers = StfmRegisters(2)
        assert registers.slowdown(0, 0) == 1.0

    def test_slowdown_formula(self):
        """S = Tshared / (Tshared - Tinterference)."""
        registers = StfmRegisters(2)
        registers.add_interference(0, 500.0)
        assert registers.slowdown(0, 1000) == pytest.approx(2.0)

    def test_no_interference_means_unit_slowdown(self):
        registers = StfmRegisters(2)
        assert registers.slowdown(0, 1000) == pytest.approx(1.0)

    def test_negative_interference_gives_speedup(self):
        """Constructive sharing (footnote 10) can make Talone > Tshared."""
        registers = StfmRegisters(2)
        registers.add_interference(0, -1000.0)
        assert registers.slowdown(0, 1000) == pytest.approx(0.5)

    def test_slowdown_saturates(self):
        registers = StfmRegisters(2)
        registers.add_interference(0, 999.9)
        assert registers.slowdown(0, 1000) == SLOWDOWN_CAP
        registers.add_interference(0, 10_000.0)  # Talone would be negative
        assert registers.slowdown(0, 1000) == SLOWDOWN_CAP


class TestWeightedSlowdown:
    def test_weight_scales_excess_slowdown(self):
        """S' = 1 + (S - 1) * W: a slowdown of 1.1 at weight 10 reads as 2
        (the paper's Section 3.3 example)."""
        registers = StfmRegisters(2, weights=[10.0, 1.0])
        registers.add_interference(0, 1000 * (1 - 1 / 1.1))
        assert registers.weighted_slowdown(0, 1000) == pytest.approx(2.0, rel=1e-3)

    def test_weight_one_is_identity(self):
        registers = StfmRegisters(1)
        registers.add_interference(0, 300.0)
        assert registers.weighted_slowdown(0, 1000) == pytest.approx(
            registers.slowdown(0, 1000)
        )

    def test_weight_zero_never_slowed(self):
        registers = StfmRegisters(1, weights=[0.0])
        registers.add_interference(0, 900.0)
        assert registers.weighted_slowdown(0, 1000) == pytest.approx(1.0)


class TestIntervalReset:
    def test_reset_after_interval_length(self):
        registers = StfmRegisters(2, interval_length=100)
        registers.add_interference(0, 50.0)
        registers.record_row(0, 3, 42)
        assert not registers.advance_interval(60, [500, 0])
        assert registers.advance_interval(60, [700, 100])
        assert registers.resets == 1
        # After the reset the offsets rebase Tshared and clear the rest.
        assert registers.tshared(0, 700) == 0
        assert registers.tshared(0, 900) == 200
        assert registers.threads[0].t_interference == 0.0
        assert registers.last_row(0, 3) is None

    def test_counter_restarts_after_reset(self):
        registers = StfmRegisters(1, interval_length=100)
        registers.advance_interval(150, [0])
        assert registers.interval_counter == 0

    def test_slowdown_uses_interval_local_tshared(self):
        registers = StfmRegisters(1, interval_length=100)
        registers.advance_interval(100, [10_000])
        registers.add_interference(0, 250.0)
        # Only the 500 post-reset stall cycles count.
        assert registers.slowdown(0, 10_500) == pytest.approx(2.0)


class TestLastRow:
    def test_record_and_lookup(self):
        registers = StfmRegisters(1)
        assert registers.last_row(0, 5) is None
        registers.record_row(0, 5, 77)
        assert registers.last_row(0, 5) == 77
        registers.record_row(0, 5, 78)
        assert registers.last_row(0, 5) == 78

    def test_per_bank_isolation(self):
        registers = StfmRegisters(1)
        registers.record_row(0, 5, 77)
        assert registers.last_row(0, 6) is None
