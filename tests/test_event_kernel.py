"""Differential tests: event-driven kernel vs the naive reference kernel.

The event-driven kernel (DESIGN.md §3.14) must be *bit-identical* to the
tick-every-DRAM-cycle loop it replaces — not statistically close, the
same numbers.  These tests run randomized workloads through both kernels
(selected via ``STFM_SIM_KERNEL``) across every scheduling policy,
refresh on/off, write-drain pressure, and MLP limits, and compare full
result fingerprints: core snapshots, controller counters, per-thread
memory statistics, per-channel command mixes, and (separately) the exact
command stream the protocol sanitizer observes.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.protocol import ProtocolSanitizer
from repro.engine.jobs import build_trace
from repro.schedulers import make_policy
from repro.sim.config import SystemConfig
from repro.sim.kernel import KERNEL_ENV, kernel_name
from repro.sim.system import CmpSystem
from repro.workloads.spec2006 import BenchmarkSpec

POLICIES = (
    "fr-fcfs",
    "fcfs",
    "fr-fcfs+cap",
    "nfq",
    "stfm",
    "par-bs",
    "bliss",
    "mise-stfm",
    "staged",
)


def random_spec(rng: random.Random, name: str) -> BenchmarkSpec:
    """A randomized synthetic benchmark exercising the kernel's corners:
    bursty idle gaps, pointer chases, write pressure, streaming rows."""
    return BenchmarkSpec(
        name=name,
        itype="SYN",
        mcpi=rng.uniform(1.0, 6.0),
        mpki=rng.uniform(5.0, 50.0),
        rb_hit_rate=rng.uniform(0.1, 0.9),
        category=rng.randint(0, 3),
        burstiness=rng.choice([0.0, 0.5, 0.95]),
        burst_len=rng.randint(4, 12),
        dependence=rng.choice([0.0, 0.3]),
        mlp=rng.randint(1, 8),
        write_fraction=rng.choice([0.0, 0.3, 0.8]),
        streaming=rng.random() < 0.3,
        periodic_bursts=rng.random() < 0.3,
    )


def simulate(
    monkeypatch,
    kernel: str,
    specs: "list[BenchmarkSpec]",
    policy_name: str,
    budget: int = 2_000,
    seed: int = 0,
    refresh: bool = True,
    mlp_limits: "list[int] | None" = None,
    write_capacity: int = 32,
) -> dict:
    """Run one workload under ``kernel`` and fingerprint everything."""
    monkeypatch.setenv(KERNEL_ENV, kernel)
    assert kernel_name() == kernel
    config = SystemConfig(
        num_cores=len(specs),
        refresh_enabled=refresh,
        write_capacity=write_capacity,
    )
    traces = [
        build_trace(config, seed, spec, budget, i, len(specs))
        for i, spec in enumerate(specs)
    ]
    policy = make_policy(policy_name, num_threads=len(specs))
    system = CmpSystem(
        config, traces, policy, budget, mlp_limits=mlp_limits
    )
    snapshots = system.run()
    controller = system.controller
    fingerprint = {
        "snapshots": snapshots,
        "now": system.now,
        "commands_issued": controller.commands_issued,
        "refreshes_issued": controller.refreshes_issued,
        "channel_commands": [
            dict(channel.commands_issued) for channel in controller.channels
        ],
        "thread_stats": [
            (
                stats.reads_completed,
                stats.writes_completed,
                stats.row_hits,
                stats.row_closed,
                stats.row_conflicts,
                stats.total_read_latency,
            )
            for stats in controller.thread_stats
        ],
        "core_counters": [
            (
                core.committed_instructions,
                core.memory_stall_cycles,
                core.idle_cycles,
                core.reads_issued,
                core.writes_issued,
            )
            for core in system.cores
        ],
    }
    if hasattr(policy, "fairness_rule_fraction"):
        fingerprint["fairness_rule_fraction"] = policy.fairness_rule_fraction
    return fingerprint


def assert_identical(monkeypatch, specs, policy_name, **kwargs):
    event = simulate(monkeypatch, "event", specs, policy_name, **kwargs)
    naive = simulate(monkeypatch, "naive", specs, policy_name, **kwargs)
    assert event == naive, (
        f"kernels diverged under {policy_name} ({kwargs}):\n"
        f"event: {event}\nnaive: {naive}"
    )


@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("seed", [0, 1])
def test_randomized_workloads_bit_identical(monkeypatch, policy_name, seed):
    """The core differential property, across every policy."""
    rng = random.Random(1000 * seed + POLICIES.index(policy_name))
    num_cores = rng.choice([2, 4])
    specs = [random_spec(rng, f"syn-{i}") for i in range(num_cores)]
    assert_identical(
        monkeypatch,
        specs,
        policy_name,
        seed=seed,
        refresh=rng.random() < 0.5,
        mlp_limits=[rng.randint(1, 8) for _ in range(num_cores)],
    )


@pytest.mark.parametrize("policy_name", ["fr-fcfs", "nfq", "stfm"])
def test_bursty_compute_gaps_bit_identical(monkeypatch, policy_name):
    """Regression: fig3-style bursty threads with long pure-compute gaps.

    These exercise the closed-form compute replay
    (:meth:`repro.cpu.core.Core.advance_compute`); an early bulk-step
    implementation diverged here by rounding commit cycles per block.
    """
    bursty = BenchmarkSpec(
        name="bursty",
        itype="SYN",
        mcpi=2.0,
        mpki=12.0,
        rb_hit_rate=0.4,
        category=0,
        burstiness=0.95,
        burst_len=10,
        dependence=0.0,
        mlp=6,
        periodic_bursts=True,
    )
    continuous = BenchmarkSpec(
        name="continuous",
        itype="SYN",
        mcpi=5.0,
        mpki=40.0,
        rb_hit_rate=0.4,
        category=3,
        burstiness=0.0,
        burst_len=6,
        dependence=0.0,
        mlp=8,
    )
    assert_identical(
        monkeypatch, [continuous, bursty, bursty, bursty], policy_name
    )


def test_write_drain_pressure_bit_identical(monkeypatch):
    """A small write buffer forces frequent drain-mode flips — the
    drain hysteresis must replay identically across jumps."""
    rng = random.Random(7)
    specs = [random_spec(rng, f"wr-{i}") for i in range(2)]
    specs = [
        BenchmarkSpec(
            **{
                **spec.__dict__,
                "write_fraction": 0.8,
                "name": spec.name,
            }
        )
        for spec in specs
    ]
    for policy_name in ("fr-fcfs", "stfm"):
        assert_identical(
            monkeypatch, specs, policy_name, write_capacity=8
        )


def test_single_core_mlp_one_bit_identical(monkeypatch):
    """Serialized pointer chases (MLP 1) keep the window in lockstep
    with the in-service heap; the floor/ceil alignment of heap bounds
    must not drift."""
    rng = random.Random(11)
    spec = random_spec(rng, "chase")
    spec = BenchmarkSpec(
        **{**spec.__dict__, "dependence": 0.3, "mlp": 1, "name": "chase"}
    )
    assert_identical(monkeypatch, [spec], "fr-fcfs", mlp_limits=[1])


@pytest.mark.parametrize("policy_name", ["staged", "bliss", "mise-stfm", "stfm"])
def test_streaming_agent_mix_bit_identical(monkeypatch, policy_name):
    """A GPU-like streaming agent next to CPU threads: the agent's long
    bursts and high MLP stress the inert-window bounds, and the staged
    policy's online classification must replay identically."""
    from repro.workloads.streaming import STREAMING_AGENTS

    rng = random.Random(23)
    specs = [
        STREAMING_AGENTS["gpu-stream"],
        random_spec(rng, "cpu-0"),
        random_spec(rng, "cpu-1"),
    ]
    assert_identical(monkeypatch, specs, policy_name, budget=3_000)


class RecordingSanitizer(ProtocolSanitizer):
    """Sanitizer that additionally keeps the *unbounded* command stream
    (the base class only keeps a bounded violation window)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.stream: list = []

    def observe(self, channel, bank, kind, row, now):
        self.stream.append(("cmd", now, channel, bank, kind.name, row))
        super().observe(channel, bank, kind, row, now)

    def on_auto_precharge(self, channel, bank, now):
        self.stream.append(("auto-pre", now, channel, bank))
        super().on_auto_precharge(channel, bank, now)

    def on_refresh(self, channel, now):
        self.stream.append(("refresh", now, channel))
        super().on_refresh(channel, now)


def test_sanitizer_sees_identical_command_stream(monkeypatch):
    """Both kernels must drive the DRAM through the same command
    sequence at the same cycles — validated by the protocol sanitizer,
    compared command by command."""
    rng = random.Random(3)
    specs = [random_spec(rng, f"san-{i}") for i in range(3)]
    streams = {}
    for kernel in ("event", "naive"):
        monkeypatch.setenv(KERNEL_ENV, kernel)
        config = SystemConfig(num_cores=len(specs))
        traces = [
            build_trace(config, 0, spec, 2_000, i, len(specs))
            for i, spec in enumerate(specs)
        ]
        policy = make_policy("stfm", num_threads=len(specs))
        system = CmpSystem(config, traces, policy, 2_000, sanitize=False)
        sanitizer = RecordingSanitizer(
            config.timing, system.mapper.num_channels, system.mapper.num_banks
        )
        system.sanitizer = sanitizer
        system.controller.attach_sanitizer(sanitizer)
        system.run()
        assert sanitizer.commands_checked > 0
        streams[kernel] = sanitizer.stream
    assert streams["event"] == streams["naive"]


def test_naive_escape_hatch_selects_naive(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "naive")
    assert kernel_name() == "naive"
    monkeypatch.delenv(KERNEL_ENV)
    assert kernel_name() == "event"
    monkeypatch.setenv(KERNEL_ENV, "bogus")
    with pytest.raises(ValueError, match="bogus"):
        kernel_name()
