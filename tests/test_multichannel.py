"""Tests for multi-channel systems (8/16-core configurations)."""

import pytest

from repro.schedulers.frfcfs import FrFcfsPolicy
from repro.schedulers.nfq import NfqPolicy
from repro.core.stfm import StfmPolicy
from tests.conftest import ControllerHarness


class TestChannelIndependence:
    def test_channels_issue_in_the_same_cycle(self):
        harness = ControllerHarness(num_channels=2)
        a = harness.submit(0, bank=0, row=1, channel=0)
        b = harness.submit(1, bank=0, row=1, channel=1)
        harness.run_until_done()
        # Same bank index on different channels: fully parallel, so both
        # finish within one uncontended latency (plus scheduling quanta).
        limit = harness.timing.row_closed_latency() + 3 * harness.timing.dram_cycle
        assert a.completed_at - a.arrival <= limit
        assert b.completed_at - b.arrival <= limit

    def test_data_buses_are_per_channel(self):
        same_harness = ControllerHarness(num_channels=2)
        same_channel = [
            same_harness.submit(0, bank=b, row=1, channel=0) for b in range(2)
        ]
        same_harness.run_until_done()
        gap_same = abs(
            same_channel[0].completed_at - same_channel[1].completed_at
        )
        split_harness = ControllerHarness(num_channels=2)
        split = [
            split_harness.submit(0, bank=0, row=2, channel=c) for c in range(2)
        ]
        split_harness.run_until_done()
        gap_split = abs(split[0].completed_at - split[1].completed_at)
        harness = same_harness
        # On one channel the bus serializes the two bursts; across
        # channels they complete together.
        assert gap_same >= harness.timing.burst
        assert gap_split < harness.timing.burst

    def test_one_command_per_channel_per_cycle(self):
        harness = ControllerHarness(num_channels=2)
        for channel in range(2):
            for bank in range(4):
                harness.submit(0, bank=bank, row=1, channel=channel)
        harness.tick()
        issued = sum(
            sum(ch.commands_issued.values()) for ch in harness.controller.channels
        )
        assert issued == 2  # one per channel


class TestStfmAcrossChannels:
    def test_bank_waiting_parallelism_spans_channels(self):
        policy = StfmPolicy(2)
        harness = ControllerHarness(policy=policy, num_threads=2, num_channels=2)
        harness.submit(0, bank=0, row=1, channel=0)
        harness.submit(0, bank=0, row=1, channel=1)
        assert harness.controller.queues.waiting_bank_count(0) == 2

    def test_slowdowns_are_global_not_per_channel(self):
        """STFM's registers span channels: interference on channel 0
        prioritizes the victim on channel 1 too."""
        policy = StfmPolicy(2, alpha=1.05)
        harness = ControllerHarness(policy=policy, num_threads=2, num_channels=2)
        stalls = {0: 10_000, 1: 10_000}
        policy.set_tshared_source(lambda t: stalls[t])
        policy.registers.add_interference(1, 5_000.0)
        harness.submit(0, bank=0, row=1, channel=1)
        harness.submit(1, bank=0, row=2, channel=1)
        harness.tick()
        assert policy.fairness_mode
        assert policy.max_slowdown_thread == 1


class TestNfqAcrossChannels:
    def test_vft_keyed_per_channel_bank(self):
        policy = NfqPolicy(2)
        harness = ControllerHarness(policy=policy, num_threads=2, num_channels=2)
        harness.submit(0, bank=0, row=1, channel=0)
        harness.run_until_done()
        assert policy.vft(0, 0, 0) > 0
        assert policy.vft(0, 1, 0) == 0


class TestLoadDistribution:
    def test_requests_route_by_decoded_channel(self):
        harness = ControllerHarness(num_channels=2)
        request = harness.submit(0, bank=3, row=7, channel=1)
        assert request.coords.channel == 1
        queues = harness.controller.queues.channels[1]
        assert queues.read_count == 1
        assert harness.controller.queues.channels[0].read_count == 0

    def test_drain_mode_is_per_channel(self):
        harness = ControllerHarness(
            num_channels=2, write_drain_high=2, write_drain_low=0
        )
        # Fill channel 0's write buffer past the watermark; channel 1
        # keeps reads flowing.
        for i in range(3):
            harness.submit(0, bank=0, row=10 + i, channel=0, is_write=True)
        read = harness.submit(1, bank=0, row=1, channel=1)
        harness.tick(60)
        assert read.completed_at is not None
        assert harness.controller.thread_stats[0].writes_completed >= 2
