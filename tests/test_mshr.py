"""Tests for the MSHR file."""

import pytest

from repro.controller.request import MemoryRequest
from repro.cpu.mshr import MshrFile
from repro.dram.address import AddressMapper


def make_request(row: int = 0) -> MemoryRequest:
    mapper = AddressMapper()
    address = mapper.compose(0, 0, row, 0)
    return MemoryRequest(0, address, mapper.decode(address), False, 0)


class TestMshrFile:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MshrFile(0)

    def test_allocate_until_full(self):
        mshrs = MshrFile(2)
        assert mshrs.try_allocate(make_request(1), 0)
        assert mshrs.try_allocate(make_request(2), 0)
        assert not mshrs.try_allocate(make_request(3), 0)
        assert len(mshrs) == 2

    def test_release_on_completion(self):
        mshrs = MshrFile(1)
        request = make_request(1)
        assert mshrs.try_allocate(request, 0)
        assert not mshrs.try_allocate(make_request(2), 50)
        request.completed_at = 100
        assert not mshrs.try_allocate(make_request(2), 99)
        assert mshrs.try_allocate(make_request(2), 100)

    def test_out_of_order_completion_reclaimed_when_full(self):
        mshrs = MshrFile(2)
        first = make_request(1)
        second = make_request(2)
        mshrs.try_allocate(first, 0)
        mshrs.try_allocate(second, 0)
        second.completed_at = 50  # completes before the head
        assert mshrs.try_allocate(make_request(3), 60)  # full sweep frees it
        assert len(mshrs) == 2
