"""Tests for the NFQ (fair queueing) scheduler."""

import pytest

from repro.schedulers.nfq import NfqPolicy
from tests.conftest import ControllerHarness


class TestConstruction:
    def test_equal_shares_by_default(self):
        policy = NfqPolicy(4)
        assert policy._stretch == [4.0] * 4

    def test_weighted_shares(self):
        policy = NfqPolicy(2, shares=[3.0, 1.0])
        # Total share 4: the heavy thread is stretched 4/3, the light 4.
        assert policy._stretch == pytest.approx([4 / 3, 4.0])

    def test_share_validation(self):
        with pytest.raises(ValueError):
            NfqPolicy(2, shares=[1.0])
        with pytest.raises(ValueError):
            NfqPolicy(2, shares=[1.0, 0.0])


class TestVirtualFinishTimes:
    def test_vft_advances_on_service(self):
        harness = ControllerHarness(policy=NfqPolicy(2))
        policy = harness.controller.policy
        harness.submit(0, bank=0, row=1)
        harness.run_until_done()
        assert policy.vft(0, 0, 0) > 0
        assert policy.vft(1, 0, 0) == 0

    def test_vft_scales_with_num_threads(self):
        results = []
        for threads in (2, 4):
            harness = ControllerHarness(
                policy=NfqPolicy(threads), num_threads=threads
            )
            harness.submit(0, bank=0, row=1)
            harness.run_until_done()
            results.append(harness.controller.policy.vft(0, 0, 0))
        assert results[1] > results[0]

    def test_vft_is_per_bank(self):
        harness = ControllerHarness(policy=NfqPolicy(2))
        harness.submit(0, bank=0, row=1)
        harness.submit(0, bank=1, row=1)
        harness.run_until_done()
        policy = harness.controller.policy
        assert policy.vft(0, 0, 0) > 0
        assert policy.vft(0, 0, 1) > 0

    def test_earliest_deadline_first(self):
        """A thread with accumulated VFT loses to a fresh thread."""
        harness = ControllerHarness(policy=NfqPolicy(2))
        # Thread 0 builds up VFT in bank 0.
        for column in range(4):
            harness.submit(0, bank=0, row=1, column=column)
        harness.run_until_done()
        harness.pending.clear()
        # Now both threads contend with row misses; thread 1's VFT is 0.
        hog = harness.submit(0, bank=0, row=2)
        fresh = harness.submit(1, bank=0, row=3)
        harness.run_until_done()
        assert fresh.completed_at < hog.completed_at


class TestIdlenessProblem:
    def test_returning_thread_captures_the_bank(self):
        """The defining NFQ pathology (paper Figure 3): a thread that was
        idle returns with a lagging virtual deadline and is prioritized
        over the continuously-running thread."""
        harness = ControllerHarness(policy=NfqPolicy(2))
        # Thread 0 runs "continuously" for a while, accruing VFT.
        for column in range(8):
            harness.submit(0, bank=0, row=1, column=column)
        harness.run_until_done()
        harness.pending.clear()
        # Thread 1 wakes up; both submit interleaved batches.  The
        # continuous thread's requests are row hits (FR-FCFS would finish
        # them all first); NFQ lets them bypass only within the
        # priority-inversion window (tRAS), then switches to the
        # returning thread's earlier virtual deadlines.
        continuous = [
            harness.submit(0, bank=0, row=1, column=8 + c) for c in range(10)
        ]
        bursty = [harness.submit(1, bank=0, row=50 + c) for c in range(4)]
        harness.run_until_done()
        assert min(b.completed_at for b in bursty) < max(
            c.completed_at for c in continuous
        )


class TestPriorityInversionPrevention:
    def test_row_hits_bypass_within_window(self):
        harness = ControllerHarness(policy=NfqPolicy(2))
        harness.submit(0, bank=0, row=1, column=0)
        harness.run_until_done()
        harness.pending.clear()
        # Thread 0's hit vs thread 1's earlier-deadline miss: within the
        # tRAS window the hit goes first (FQ-VFTF's first-ready rule).
        miss = harness.submit(1, bank=0, row=2)
        hit = harness.submit(0, bank=0, row=1, column=1)
        harness.run_until_done()
        assert hit.completed_at < miss.completed_at
