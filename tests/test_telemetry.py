"""Tests for the telemetry sampler and the STFM estimate validation."""

import pytest

from repro.schedulers.registry import make_policy
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.system import CmpSystem
from repro.sim.telemetry import TelemetrySampler
from repro.workloads.spec2006 import SPEC2006
from repro.workloads.synthetic import generate_trace


def build_system(policy_name: str, budget: int = 5_000) -> CmpSystem:
    config = SystemConfig(num_cores=2)
    mapper = config.mapper()
    names = ["mcf", "GemsFDTD"]
    traces = [
        generate_trace(SPEC2006[n], mapper, budget, partition=i, num_partitions=2)
        for i, n in enumerate(names)
    ]
    policy = make_policy(policy_name, num_threads=2)
    return CmpSystem(config, traces, policy, budget,
                     mlp_limits=[SPEC2006[n].mlp for n in names])


class TestSampler:
    def test_period_validation(self):
        system = build_system("fr-fcfs")
        with pytest.raises(ValueError):
            TelemetrySampler(system, period=1)

    def test_samples_recorded_at_period(self):
        system = build_system("fr-fcfs")
        telemetry = TelemetrySampler(system, period=2_000).run()
        assert len(telemetry.samples) >= 3
        cycles = telemetry.cycles
        assert cycles == sorted(cycles)

    def test_run_reaches_budgets(self):
        system = build_system("fr-fcfs")
        TelemetrySampler(system, period=2_000).run()
        assert all(core.snapshot is not None for core in system.cores)

    def test_monotonic_counters(self):
        system = build_system("stfm")
        telemetry = TelemetrySampler(system, period=1_000).run()
        for thread in range(2):
            instructions = telemetry.series("instructions", thread)
            stalls = telemetry.series("stall_cycles", thread)
            assert instructions == sorted(instructions)
            assert stalls == sorted(stalls)

    def test_non_stfm_policy_has_no_estimates(self):
        system = build_system("fcfs")
        telemetry = TelemetrySampler(system, period=2_000).run()
        assert all(s.estimated_slowdowns is None for s in telemetry.samples)


class TestEstimateValidation:
    def test_stfm_estimate_tracks_measured_slowdown(self):
        """The paper's central mechanism: the hardware slowdown estimate
        should correlate with the measured (ground-truth) slowdown."""
        budget = 8_000
        runner = ExperimentRunner(
            SystemConfig(num_cores=2), instruction_budget=budget
        )
        system = build_system("stfm", budget)
        telemetry = TelemetrySampler(system, period=2_000).run()
        final = telemetry.samples[-1]
        assert final.estimated_slowdowns is not None
        names = ["mcf", "GemsFDTD"]
        for i, name in enumerate(names):
            alone = runner.alone_snapshot(name, i, 2)
            measured = system.cores[i].snapshot.mcpi / alone.mcpi
            estimated = final.estimated_slowdowns[i]
            # Generous envelope: the estimate should at least be in the
            # right regime (both indicate real contention, within ~2.5x).
            assert estimated > 1.0
            assert estimated / measured < 2.5
            assert measured / estimated < 2.5
