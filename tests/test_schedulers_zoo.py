"""Unit tests for the extension-scheduler zoo (BLISS, MISE-STFM, STAGED)
and the heterogeneous streaming-agent workloads."""

from __future__ import annotations

import pytest

from repro.core.mise import MiseStfmPolicy, ServiceRateEstimator
from repro.schedulers import BlissPolicy, StagedPolicy, make_policy
from repro.schedulers.registry import (
    EXTENSION_ORDER,
    PAPER_ORDER,
    available_policies,
)
from repro.workloads import (
    STREAMING_AGENTS,
    benchmark,
    heterogeneous_workloads,
    is_streaming_agent,
)


class _Request:
    def __init__(self, thread_id: int) -> None:
        self.thread_id = thread_id


class _Candidate:
    def __init__(self, thread_id: int, is_column: bool, arrival: int) -> None:
        self.thread_id = thread_id
        self.is_column = is_column
        self.arrival = arrival


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_extensions_registered(self):
        names = available_policies(include_extensions=True)
        assert names == PAPER_ORDER + EXTENSION_ORDER
        for name in EXTENSION_ORDER:
            policy = make_policy(name, num_threads=4)
            # The whole zoo satisfies the event-kernel purity protocol.
            assert policy.needs_scan is False
            assert policy.pure_select is True
            assert policy.uses_stall_slopes is False

    def test_paper_order_excludes_extensions(self):
        assert available_policies() == PAPER_ORDER

    def test_unknown_policy_lists_everything(self):
        with pytest.raises(ValueError, match="mise-stfm"):
            make_policy("bogus", num_threads=2)


# -- BLISS --------------------------------------------------------------------


class TestBliss:
    def test_streak_blacklists_past_threshold(self):
        policy = BlissPolicy(num_threads=2, threshold=4)
        for _ in range(4):
            policy.on_request_completed(_Request(0), now=0)
        assert policy.blacklisted_threads == []
        policy.on_request_completed(_Request(0), now=0)  # 5th consecutive
        assert policy.blacklisted_threads == [0]
        assert policy.blacklist_events == 1

    def test_streak_resets_on_interleaving(self):
        policy = BlissPolicy(num_threads=2, threshold=4)
        for _ in range(4):
            policy.on_request_completed(_Request(0), now=0)
            policy.on_request_completed(_Request(1), now=0)
        assert policy.blacklisted_threads == []

    def test_periodic_clearing(self):
        policy = BlissPolicy(num_threads=2, threshold=1, clearing_interval=10)
        policy.on_request_completed(_Request(0), now=0)
        policy.on_request_completed(_Request(0), now=0)
        assert policy.blacklisted_threads == [0]
        for now in range(10):
            policy.begin_cycle(now)
        assert policy.blacklisted_threads == []
        assert policy.clears == 1

    def test_fast_forward_matches_per_cycle_ticks(self):
        ticked = BlissPolicy(num_threads=2, clearing_interval=7)
        jumped = BlissPolicy(num_threads=2, clearing_interval=7)
        for now in range(23):
            ticked.begin_cycle(now)
        jumped.fast_forward(0, 23, None)
        assert ticked._ticks == jumped._ticks
        assert ticked.clears == jumped.clears

    def test_blacklisted_thread_deprioritized(self):
        policy = BlissPolicy(num_threads=2, threshold=1)
        policy.on_request_completed(_Request(0), now=0)
        policy.on_request_completed(_Request(0), now=0)
        hot = _Candidate(0, is_column=True, arrival=0)
        cold = _Candidate(1, is_column=False, arrival=5)
        assert policy.priority_key(cold, 0) > policy.priority_key(hot, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlissPolicy(2, threshold=0)
        with pytest.raises(ValueError):
            BlissPolicy(2, clearing_interval=0)


# -- MISE ---------------------------------------------------------------------


class TestServiceRateEstimator:
    def test_rates_split_by_sampled_thread(self):
        estimator = ServiceRateEstimator(num_threads=2)
        assert estimator.sampled_thread == 0
        # Epoch 1: thread 0 sampled; both threads complete requests.
        for _ in range(8):
            estimator.on_request_completed(0)
        for _ in range(2):
            estimator.on_request_completed(1)
        estimator.end_epoch()
        # Epoch 2: thread 1 sampled.
        for _ in range(2):
            estimator.on_request_completed(0)
        for _ in range(8):
            estimator.on_request_completed(1)
        estimator.end_epoch()
        assert estimator.alone_rate(0) == 8.0
        assert estimator.shared_rate(0) == 2.0
        assert estimator.alone_rate(1) == 8.0
        assert estimator.shared_rate(1) == 2.0
        assert estimator.slowdown(0) == pytest.approx(4.0)
        assert estimator.epochs_completed == 2

    def test_slowdown_defaults_and_floors(self):
        estimator = ServiceRateEstimator(num_threads=2)
        # No measurements at all: slowdown is 1 by convention.
        assert estimator.slowdown(0) == 1.0
        # Shared rate above alone rate floors at 1 (no negative slowdown).
        estimator._alone_served[0] = 2
        estimator._alone_epochs[0] = 1
        estimator._shared_served[0] = 8
        estimator._shared_epochs[0] = 1
        assert estimator.slowdown(0) == 1.0

    def test_slowdown_saturates_at_cap(self):
        from repro.core.registers import SLOWDOWN_CAP

        estimator = ServiceRateEstimator(num_threads=1)
        estimator._alone_served[0] = 1000
        estimator._alone_epochs[0] = 1
        estimator._shared_served[0] = 0
        estimator._shared_epochs[0] = 1
        assert estimator.slowdown(0) == SLOWDOWN_CAP


class TestMiseStfm:
    def test_fast_forward_matches_per_cycle_ticks(self):
        class _Queues:
            def threads_with_reads(self):
                return [0, 1]

        class _Controller:
            queues = _Queues()

        ticked = MiseStfmPolicy(num_threads=2, epoch_length=5)
        jumped = MiseStfmPolicy(num_threads=2, epoch_length=5)
        for policy in (ticked, jumped):
            policy.controller = _Controller()
            # Seed asymmetric service so epoch boundaries change state.
            for _ in range(6):
                policy.on_request_completed(_Request(0), now=0)
            policy.on_request_completed(_Request(1), now=0)
        for now in range(17):
            ticked.begin_cycle(now)
        jumped.fast_forward(0, 17, None)
        assert ticked._epoch_tick == jumped._epoch_tick
        assert ticked.estimator.epochs_completed == (
            jumped.estimator.epochs_completed
        )
        assert ticked.fairness_mode == jumped.fairness_mode
        assert ticked.total_cycles == jumped.total_cycles
        assert ticked.fairness_cycles == jumped.fairness_cycles

    def test_sampled_thread_gets_top_priority(self):
        policy = MiseStfmPolicy(num_threads=2)
        assert policy.estimator.sampled_thread == 0
        sampled = _Candidate(0, is_column=False, arrival=9)
        other = _Candidate(1, is_column=True, arrival=0)
        assert policy.priority_key(sampled, 0) > policy.priority_key(other, 0)

    def test_validation_mirrors_stfm(self):
        with pytest.raises(ValueError):
            MiseStfmPolicy(2, alpha=0.5)
        with pytest.raises(ValueError):
            MiseStfmPolicy(2, epoch_length=0)
        with pytest.raises(ValueError):
            MiseStfmPolicy(2, weights=[1.0])
        with pytest.raises(ValueError):
            MiseStfmPolicy(2, weights=[1.0, -1.0])
        policy = MiseStfmPolicy(2)
        with pytest.raises(ValueError):
            policy.set_alpha(0.9)
        with pytest.raises(ValueError):
            policy.set_thread_weight(0, -1.0)


# -- STAGED -------------------------------------------------------------------


class TestStaged:
    def test_static_assignment(self):
        policy = StagedPolicy(num_threads=3, streaming_threads=[2])
        assert policy.streaming_classified == [2]
        gpu = _Candidate(2, is_column=True, arrival=0)
        cpu = _Candidate(0, is_column=False, arrival=9)
        assert policy.priority_key(cpu, 0) > policy.priority_key(gpu, 0)
        # Static mode never reclassifies.
        for now in range(5000):
            policy.begin_cycle(now)
        assert policy.streaming_classified == [2]

    def test_online_classification_flags_the_hog(self):
        policy = StagedPolicy(
            num_threads=4, epoch_length=10, min_epoch_requests=32
        )
        for _ in range(60):
            policy.on_request_completed(_Request(0), now=0)
        for thread in (1, 2, 3):
            for _ in range(4):
                policy.on_request_completed(_Request(thread), now=0)
        for now in range(10):
            policy.begin_cycle(now)
        assert policy.streaming_classified == [0]
        assert policy.reclassifications == 1
        # A quiet epoch clears the classification.
        for now in range(10):
            policy.begin_cycle(now)
        assert policy.streaming_classified == []

    def test_quiet_epoch_below_min_requests_classifies_nobody(self):
        policy = StagedPolicy(
            num_threads=2, epoch_length=10, min_epoch_requests=32
        )
        for _ in range(20):  # below min_epoch_requests
            policy.on_request_completed(_Request(0), now=0)
        for now in range(10):
            policy.begin_cycle(now)
        assert policy.streaming_classified == []

    def test_fast_forward_matches_per_cycle_ticks(self):
        ticked = StagedPolicy(num_threads=2, epoch_length=6)
        jumped = StagedPolicy(num_threads=2, epoch_length=6)
        for policy in (ticked, jumped):
            for _ in range(40):
                policy.on_request_completed(_Request(1), now=0)
        for now in range(20):
            ticked.begin_cycle(now)
        jumped.fast_forward(0, 20, None)
        assert ticked._epoch_tick == jumped._epoch_tick
        assert ticked._streaming == jumped._streaming
        assert ticked.reclassifications == jumped.reclassifications

    def test_validation(self):
        with pytest.raises(ValueError):
            StagedPolicy(2, epoch_length=0)
        with pytest.raises(ValueError):
            StagedPolicy(2, spill_factor=1.0)


# -- streaming agents ---------------------------------------------------------


class TestStreamingAgents:
    def test_registry_and_lookup(self):
        assert set(STREAMING_AGENTS) == {
            "gpu-stream",
            "gpu-texture",
            "gpu-compute",
        }
        for name, spec in STREAMING_AGENTS.items():
            assert benchmark(name) is spec
            assert spec.itype == "GPU"
            assert is_streaming_agent(spec)
            assert is_streaming_agent(name)
        assert not is_streaming_agent("mcf")
        assert not is_streaming_agent(benchmark("mcf"))

    def test_agents_are_memory_intensive_and_latency_tolerant(self):
        cpu_mlp = max(benchmark(n).mlp for n in ("mcf", "libquantum"))
        for spec in STREAMING_AGENTS.values():
            assert spec.mpki >= 80.0
            assert spec.mlp >= 12  # latency tolerance via MLP
        # The pure graphics stream out-parallelizes every CPU benchmark.
        assert STREAMING_AGENTS["gpu-stream"].mlp > cpu_mlp

    def test_heterogeneous_workloads_shape(self):
        mixes = heterogeneous_workloads(4, 6, seed=0)
        assert len(mixes) == 6
        for mix in mixes:
            assert len(mix) == 4
            assert is_streaming_agent(mix[0])
            assert all(not is_streaming_agent(name) for name in mix[1:])
        # Deterministic in (num_cores, count, seed).
        assert mixes == heterogeneous_workloads(4, 6, seed=0)
        assert mixes != heterogeneous_workloads(4, 6, seed=1)

    def test_heterogeneous_needs_two_cores(self):
        with pytest.raises(ValueError):
            heterogeneous_workloads(1, 2)
