"""Tests for FCFS, FR-FCFS+Cap and the policy registry."""

import pytest

from repro.core.stfm import StfmPolicy
from repro.schedulers import (
    FcfsPolicy,
    FrFcfsCapPolicy,
    FrFcfsPolicy,
    NfqPolicy,
    available_policies,
    make_policy,
)
from tests.conftest import ControllerHarness


class TestRegistry:
    def test_available_policies(self):
        assert available_policies() == [
            "fr-fcfs",
            "fcfs",
            "fr-fcfs+cap",
            "nfq",
            "stfm",
        ]

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("fr-fcfs", FrFcfsPolicy),
            ("FCFS", FcfsPolicy),
            ("fr-fcfs+cap", FrFcfsCapPolicy),
            ("nfq", NfqPolicy),
            ("stfm", StfmPolicy),
        ],
    )
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, num_threads=4), cls)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("lru", num_threads=4)

    def test_policy_kwargs_forwarded(self):
        cap_policy = make_policy("fr-fcfs+cap", num_threads=2, cap=7)
        assert cap_policy.cap == 7
        stfm = make_policy("stfm", num_threads=2, alpha=2.0)
        assert stfm.alpha == 2.0


class TestFcfs:
    def test_strict_arrival_order_beats_row_hits(self):
        harness = ControllerHarness(policy=FcfsPolicy())
        harness.submit(0, bank=0, row=1)
        harness.tick(30)
        older_conflict = harness.submit(1, bank=0, row=2)
        harness.tick(1)
        younger_hit = harness.submit(0, bank=0, row=1, column=5)
        harness.run_until_done()
        assert older_conflict.completed_at < younger_hit.completed_at

    def test_cross_bank_order(self):
        harness = ControllerHarness(policy=FcfsPolicy())
        first = harness.submit(0, bank=0, row=1)
        harness.tick(1)
        second = harness.submit(1, bank=1, row=1)
        harness.run_until_done()
        assert first.completed_at < second.completed_at


class TestFrFcfsCap:
    def test_cap_validation(self):
        with pytest.raises(ValueError):
            FrFcfsCapPolicy(cap=0)

    def _streaming_starvation(self, policy) -> tuple[int, int]:
        """An older row-conflict waits while younger row hits stream.

        Returns (younger hits serviced before the conflict, conflict
        latency).  The cap applies only to *younger* columns bypassing an
        *older* row access, so the conflict must arrive first.
        """
        harness = ControllerHarness(policy=policy)
        harness.submit(0, bank=0, row=1, column=0)
        harness.run_until_done()
        harness.pending.clear()
        # One warm hit keeps the bank's winner a column while the
        # conflict enters the queue; then the younger hit stream arrives.
        warm = harness.submit(0, bank=0, row=1, column=1)
        conflict = harness.submit(1, bank=0, row=2)
        harness.tick(1)
        hits = [harness.submit(0, bank=0, row=1, column=2 + c) for c in range(12)]
        harness.pending = [warm, conflict] + hits
        harness.run_until_done()
        serviced_before = sum(
            1 for h in hits if h.completed_at < conflict.completed_at
        )
        return serviced_before, conflict.completed_at - conflict.arrival

    def test_cap_bounds_bypassing(self):
        unbounded, latency_frfcfs = self._streaming_starvation(FrFcfsPolicy())
        capped, latency_cap = self._streaming_starvation(FrFcfsCapPolicy(cap=4))
        assert unbounded >= 10  # FR-FCFS services nearly all hits first
        assert capped <= 7  # the cap lets the row access through
        assert latency_cap < latency_frfcfs

    def test_smaller_cap_is_stricter(self):
        loose, _ = self._streaming_starvation(FrFcfsCapPolicy(cap=8))
        strict, _ = self._streaming_starvation(FrFcfsCapPolicy(cap=1))
        assert strict <= loose
