"""Tests for ``simlint`` — each rule fires on a minimal bad example.

The rules are driven through :func:`repro.analysis.simlint.lint_sources`
with *virtual* paths, so the domain routing (which sub-packages a rule
applies to) is exercised without touching the real tree.  The real tree
is covered by ``tests/test_simlint_clean.py``.
"""

import textwrap

import pytest

from repro.analysis.rules import all_rules
from repro.analysis.simlint import (
    LintConfig,
    lint_sources,
    load_config,
    main,
    run_simlint,
)

CORE = "src/repro/sim/example.py"
SCHED = "src/repro/schedulers/example.py"
ENGINE = "src/repro/engine/example.py"


def lint(source, path=CORE, config=None, extra=()):
    items = [(path, textwrap.dedent(source))]
    items += [(p, textwrap.dedent(s)) for p, s in extra]
    return lint_sources(items, config)


def codes(findings):
    return [finding.code for finding in findings]


class TestRegistry:
    def test_stable_codes(self):
        assert [rule.code for rule in all_rules()] == [
            "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006",
            "SIM007",
            "SIM101", "SIM102", "SIM103", "SIM104", "SIM105", "SIM106",
            "SIM107", "SIM108", "SIM109",
        ]

    def test_every_rule_has_fixit_and_summary(self):
        for rule in all_rules():
            assert rule.summary and rule.fixit


class TestWallClock:
    def test_time_time_fires_in_core(self):
        findings = lint("import time\nstart = time.time()\n")
        assert codes(findings) == ["SIM001"]
        assert findings[0].line == 2

    def test_perf_counter_and_from_import(self):
        assert codes(lint("import time\nt = time.perf_counter()\n")) == [
            "SIM001"
        ]
        assert codes(
            lint("from time import monotonic\nt = monotonic()\n")
        ) == ["SIM001"]

    def test_datetime_now_fires(self):
        source = "import datetime\nstamp = datetime.datetime.now()\n"
        assert codes(lint(source)) == ["SIM001"]

    def test_engine_layer_is_exempt(self):
        assert lint("import time\nstart = time.time()\n", path=ENGINE) == []


class TestUnseededRandom:
    def test_global_random_fires(self):
        assert codes(lint("import random\nx = random.random()\n", SCHED)) == [
            "SIM002",  # the module-level call
            "SIM002",  # `import random` itself inside the core
        ]

    def test_bare_random_constructor_fires(self):
        findings = lint(
            "import random\nrng = random.Random()\n",
            path="src/repro/workloads/example.py",
        )
        assert codes(findings) == ["SIM002"]

    def test_seeded_random_is_clean(self):
        findings = lint(
            "import random\nrng = random.Random(1234)\nx = rng.random()\n",
            path="src/repro/workloads/example.py",
        )
        assert findings == []


class TestSetIteration:
    def test_for_over_set_literal(self):
        source = """
        def pick():
            for thread in {3, 1, 2}:
                return thread
        """
        findings = lint(source, SCHED)
        assert codes(findings) == ["SIM003"]

    def test_for_over_annotated_set_variable(self):
        source = """
        def pick(threads):
            ready: set[int] = set(threads)
            for thread in ready:
                print(thread)
        """
        assert codes(lint(source, SCHED)) == ["SIM003"]

    def test_sorted_iteration_is_the_fix(self):
        source = """
        def pick(threads):
            ready: set[int] = set(threads)
            for thread in sorted(ready):
                print(thread)
        """
        assert lint(source, SCHED) == []

    def test_order_insensitive_reductions_are_clean(self):
        source = """
        def pick(threads):
            ready: set[int] = set(threads)
            return len(ready), sum(ready), max(ready)
        """
        assert lint(source, SCHED) == []

    def test_dict_of_set_subscript_fires_cross_file(self):
        # The dict-of-set annotation lives in another file (as
        # ScanInfo.waiting_threads_by_bank does for the estimator).
        decl = """
        class ScanBox:
            by_bank: dict[int, set[int]]
        """
        use = """
        def update(scan, bank):
            waiters = scan.by_bank.get(bank)
            for thread in waiters:
                print(thread)
        """
        findings = lint(
            use, path="src/repro/core/example.py",
            extra=[("src/repro/controller/decl.py", decl)],
        )
        assert codes(findings) == ["SIM003"]

    def test_next_iter_and_list_materialization_fire(self):
        source = """
        def pick(ready: set[int]):
            first = next(iter(ready))
            ordered = list(ready)
            return first, ordered
        """
        assert codes(lint(source, SCHED)) == ["SIM003", "SIM003"]

    def test_membership_test_is_clean(self):
        source = """
        def pick(ready: set[int], thread):
            return thread in ready
        """
        assert lint(source, SCHED) == []

    def test_workloads_domain_is_exempt(self):
        source = """
        def pick():
            for thread in {3, 1, 2}:
                return thread
        """
        assert lint(source, path="src/repro/workloads/example.py") == []


class TestIdKeyed:
    def test_id_call_fires(self):
        source = """
        marked = set()
        def mark(request):
            marked.add(id(request))
        """
        findings = lint(source, SCHED)
        assert "SIM004" in codes(findings)

    def test_seq_keying_is_clean(self):
        source = """
        marked = set()
        def mark(request):
            marked.add(request.seq)
        """
        assert "SIM004" not in codes(lint(source, SCHED))


class TestFloatEquality:
    def test_float_literal_equality_fires(self):
        assert codes(lint("def f(s):\n    return s == 1.5\n")) == ["SIM005"]
        assert codes(lint("def f(s):\n    return s != 0.5\n")) == ["SIM005"]

    def test_ordering_comparisons_are_clean(self):
        assert lint("def f(s):\n    return s < 1.5 or s >= 0.5\n") == []

    def test_integer_equality_is_clean(self):
        assert lint("def f(s):\n    return s == 1\n") == []


class TestMutableDefault:
    def test_list_default_fires_everywhere(self):
        source = "def f(x=[]):\n    return x\n"
        assert codes(lint(source, path="src/repro/experiments/ex.py")) == [
            "SIM006"
        ]

    def test_call_defaults_fire(self):
        assert codes(lint("def f(x=set(), y=dict()):\n    return x\n")) == [
            "SIM006", "SIM006",
        ]

    def test_none_default_is_clean(self):
        assert lint("def f(x=None):\n    return x\n") == []


class TestSilentExcept:
    def test_broad_pass_fires_everywhere(self):
        source = """
        try:
            risky()
        except Exception:
            pass
        """
        assert codes(lint(source, path=ENGINE)) == ["SIM007"]
        assert codes(lint(source, path="src/repro/service/ex.py")) == [
            "SIM007"
        ]

    def test_bare_except_and_tuple_fire(self):
        assert codes(lint("try:\n    f()\nexcept:\n    pass\n")) == ["SIM007"]
        assert codes(
            lint("try:\n    f()\nexcept (OSError, BaseException):\n    pass\n")
        ) == ["SIM007"]

    def test_narrow_or_handled_is_clean(self):
        assert lint("try:\n    f()\nexcept OSError:\n    pass\n") == []
        assert (
            lint("try:\n    f()\nexcept Exception as exc:\n    log(exc)\n")
            == []
        )

    def test_inline_suppression(self):
        source = """
        try:
            send()
        except Exception:  # simlint: disable=SIM007
            pass
        """
        assert lint(source, path=ENGINE) == []


class TestSuppression:
    SOURCE = """
    def pick():
        for thread in {3, 1, 2}:  # simlint: disable=SIM003
            return thread
    """

    def test_inline_code_suppression(self):
        assert lint(self.SOURCE, SCHED) == []

    def test_inline_blanket_suppression(self):
        source = """
        def pick():
            for thread in {3, 1, 2}:  # simlint: disable
                return thread
        """
        assert lint(source, SCHED) == []

    def test_other_codes_not_suppressed(self):
        source = """
        def pick(s):
            for thread in {3, 1, 2}:  # simlint: disable=SIM005
                return thread
        """
        assert codes(lint(source, SCHED)) == ["SIM003"]


class TestConfig:
    BAD = """
    def pick(s):
        for thread in {3, 1, 2}:
            return s == 1.5
    """

    def test_disable_removes_a_rule(self):
        config = LintConfig(disable=frozenset({"SIM003"}))
        assert codes(lint(self.BAD, SCHED, config)) == ["SIM005"]

    def test_enable_runs_only_listed_rules(self):
        config = LintConfig(enable=frozenset({"SIM005"}))
        assert codes(lint(self.BAD, SCHED, config)) == ["SIM005"]

    def test_load_config_reads_simlint_block(self, tmp_path):
        ini = tmp_path / "setup.cfg"
        ini.write_text("[simlint]\ndisable = SIM003, SIM005\n")
        config = load_config(str(ini))
        assert config.disable == frozenset({"SIM003", "SIM005"})
        assert config.enable is None

    def test_load_config_without_block_enables_everything(self, tmp_path):
        ini = tmp_path / "setup.cfg"
        ini.write_text("[metadata]\nname = x\n")
        config = load_config(str(ini))
        assert config.enable is None and config.disable == frozenset()


class TestDriver:
    def test_run_simlint_walks_directories(self, tmp_path):
        package = tmp_path / "src" / "repro" / "schedulers"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(
            "def pick():\n    for t in {1, 2}:\n        return t\n"
        )
        findings = run_simlint([str(tmp_path)])
        assert codes(findings) == ["SIM003"]
        assert findings[0].path.endswith("bad.py")

    def test_syntax_error_is_reported_not_crashed(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = run_simlint([str(bad)])
        assert codes(findings) == ["SIM000"]

    def test_main_exit_codes(self, tmp_path, capsys):
        package = tmp_path / "src" / "repro" / "sim"
        package.mkdir(parents=True)
        clean = package / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        bad = package / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "1 finding(s)" in out

    def test_main_select_and_ignore(self, tmp_path, capsys):
        package = tmp_path / "src" / "repro" / "sim"
        package.mkdir(parents=True)
        bad = package / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main([str(bad), "--select", "SIM005"]) == 0
        capsys.readouterr()
        assert main([str(bad), "--ignore", "SIM001"]) == 0

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_simlint(["definitely/not/a/path"])


class TestCliIntegration:
    def test_stfm_sim_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        package = tmp_path / "src" / "repro" / "controller"
        package.mkdir(parents=True)
        bad = package / "bad.py"
        bad.write_text("marked = id(object())\n")
        assert cli_main(["lint", str(bad)]) == 1
        assert "SIM004" in capsys.readouterr().out

    def test_stfm_sim_lint_list_rules(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", "--list-rules"]) == 0
        assert "SIM003" in capsys.readouterr().out
