"""Tests for the set-associative cache and trace filtering."""

import pytest

from repro.cpu.cache import Cache, filter_trace
from repro.cpu.trace import Trace, TraceRecord


class TestGeometry:
    def test_default_l2_geometry(self):
        cache = Cache()  # 512 KB, 8-way, 64 B lines
        assert cache.num_sets == 1024

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, ways=3)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = Cache(size_bytes=4096, ways=2)
        hit, writeback = cache.access(0x1000)
        assert not hit and writeback is None
        hit, _ = cache.access(0x1000)
        assert hit
        assert cache.stats.hit_rate == 0.5

    def test_same_line_different_offset_hits(self):
        cache = Cache(size_bytes=4096, ways=2)
        cache.access(0x1000)
        hit, _ = cache.access(0x1030)
        assert hit

    def test_lru_eviction(self):
        cache = Cache(size_bytes=2 * 64, ways=2, line_bytes=64)  # 1 set, 2 ways
        cache.access(0x0)
        cache.access(0x40 * 1)  # same set (only one set)
        cache.access(0x40 * 2)  # evicts 0x0 (LRU)
        assert not cache.contains(0x0)
        assert cache.contains(0x40)
        hit, _ = cache.access(0x40)  # touching 0x40 makes it MRU
        assert hit
        cache.access(0x40 * 3)  # evicts 0x80 now
        assert cache.contains(0x40)

    def test_dirty_eviction_produces_writeback(self):
        cache = Cache(size_bytes=2 * 64, ways=2, line_bytes=64)
        cache.access(0x0, is_write=True)
        cache.access(0x40)
        _, writeback = cache.access(0x80)
        assert writeback == 0x0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = Cache(size_bytes=2 * 64, ways=2, line_bytes=64)
        cache.access(0x0)
        cache.access(0x40)
        _, writeback = cache.access(0x80)
        assert writeback is None

    def test_write_hit_marks_dirty(self):
        cache = Cache(size_bytes=2 * 64, ways=2, line_bytes=64)
        cache.access(0x0)
        cache.access(0x0, is_write=True)
        cache.access(0x40)
        _, writeback = cache.access(0x80)
        assert writeback == 0x0


class TestFilterTrace:
    def test_hits_folded_into_compute(self):
        cache = Cache(size_bytes=4096, ways=2)
        raw = Trace(
            [
                TraceRecord(10, False, 0x1000),
                TraceRecord(5, False, 0x1000),  # hit: folded
                TraceRecord(5, False, 0x2000),
            ],
            loop=False,
        )
        filtered = filter_trace(raw, cache)
        assert filtered.memory_operations == 2
        # 10 before the first miss; 5 + 1 (the folded hit) + 5 before the second.
        assert filtered.records[0].compute == 10
        assert filtered.records[1].compute == 11

    def test_dirty_evictions_appended_as_writebacks(self):
        cache = Cache(size_bytes=2 * 64, ways=2, line_bytes=64)
        raw = Trace(
            [
                TraceRecord(1, True, 0x0),
                TraceRecord(1, False, 0x40),
                TraceRecord(1, False, 0x80),  # evicts dirty 0x0
            ],
            loop=False,
        )
        filtered = filter_trace(raw, cache)
        # The original store to 0x0 is itself a miss record; the eviction
        # writeback is the extra zero-compute write appended after the
        # access that displaced it.
        writebacks = [
            r for r in filtered if r.is_write and r.address == 0x0 and r.compute == 0
        ]
        assert len(writebacks) == 1

    def test_loop_flag_preserved(self):
        cache = Cache(size_bytes=4096, ways=2)
        raw = Trace([TraceRecord(1, False, 0x0)], loop=True)
        assert filter_trace(raw, cache).loop is True
