"""Tests for memory requests and the request queues."""

import pytest

from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.dram.address import AddressMapper
from repro.dram.bank import RowBufferOutcome


def make_request(
    mapper: AddressMapper,
    thread: int = 0,
    bank: int = 0,
    row: int = 0,
    column: int = 0,
    channel: int = 0,
    is_write: bool = False,
    arrival: int = 0,
) -> MemoryRequest:
    address = mapper.compose(channel, bank, row, column)
    return MemoryRequest(thread, address, mapper.decode(address), is_write, arrival)


class TestMemoryRequest:
    def test_service_outcome_hit(self, mapper):
        request = make_request(mapper)
        assert request.service_outcome() is RowBufferOutcome.ROW_HIT

    def test_service_outcome_closed(self, mapper):
        request = make_request(mapper)
        request.got_activate = True
        assert request.service_outcome() is RowBufferOutcome.ROW_CLOSED

    def test_service_outcome_conflict(self, mapper):
        request = make_request(mapper)
        request.got_precharge = True
        request.got_activate = True
        assert request.service_outcome() is RowBufferOutcome.ROW_CONFLICT

    def test_done_tracks_completion(self, mapper):
        request = make_request(mapper)
        assert not request.done
        request.completed_at = 100
        assert request.done


class TestRequestQueues:
    @pytest.fixture
    def queues(self) -> RequestQueues:
        return RequestQueues(num_channels=2, num_banks=8, num_threads=3)

    def test_enqueue_and_counts(self, queues, mapper):
        two_channel = AddressMapper(num_channels=2)
        request = make_request(two_channel, thread=1, bank=3)
        assert queues.enqueue_read(request)
        assert queues.queued_reads(1) == 1
        assert queues.total_reads() == 1
        assert queues.threads_with_reads() == [1]

    def test_waiting_bank_count_tracks_distinct_banks(self):
        mapper = AddressMapper(num_channels=2)
        queues = RequestQueues(2, 8, 2)
        for bank in (0, 0, 3):
            queues.enqueue_read(make_request(mapper, thread=0, bank=bank))
        assert queues.waiting_bank_count(0) == 2  # banks 0 and 3

    def test_waiting_bank_count_distinguishes_channels(self):
        mapper = AddressMapper(num_channels=2)
        queues = RequestQueues(2, 8, 1)
        queues.enqueue_read(make_request(mapper, bank=0, channel=0))
        queues.enqueue_read(make_request(mapper, bank=0, channel=1))
        assert queues.waiting_bank_count(0) == 2

    def test_remove_read_restores_counts(self):
        mapper = AddressMapper(num_channels=2)
        queues = RequestQueues(2, 8, 2)
        first = make_request(mapper, thread=0, bank=0)
        second = make_request(mapper, thread=0, bank=0)
        queues.enqueue_read(first)
        queues.enqueue_read(second)
        queues.remove_read(first)
        assert queues.waiting_bank_count(0) == 1
        queues.remove_read(second)
        assert queues.waiting_bank_count(0) == 0
        assert queues.threads_with_reads() == []

    def test_read_capacity_enforced(self):
        mapper = AddressMapper()
        queues = RequestQueues(1, 8, 1, read_capacity=2)
        assert queues.enqueue_read(make_request(mapper, row=1))
        assert queues.enqueue_read(make_request(mapper, row=2))
        assert not queues.enqueue_read(make_request(mapper, row=3))

    def test_write_capacity_enforced(self):
        mapper = AddressMapper()
        queues = RequestQueues(1, 8, 1, write_capacity=1)
        assert queues.enqueue_write(make_request(mapper, is_write=True))
        assert not queues.enqueue_write(make_request(mapper, is_write=True, row=5))

    def test_writes_do_not_affect_read_bookkeeping(self):
        mapper = AddressMapper()
        queues = RequestQueues(1, 8, 1)
        queues.enqueue_write(make_request(mapper, is_write=True))
        assert queues.waiting_bank_count(0) == 0
        assert queues.queued_reads(0) == 0
        assert queues.total_writes() == 1
