"""Tests for the cluster chaos layer (PR 10).

Four layers:

* unit: the runner circuit breaker (state machine, deterministic
  exponential backoff with jitter), the coordinator checkpoint file,
  the fault spool + replay-stable decision filtering, and the
  capacity-weighted rendezvous router;
* in-process integration: coordinator crash-resume across incarnations
  (late completions from a dead incarnation refused, exactly-once
  settlement, resume metrics), conditional store PUTs, and per-runner
  capacity enforcement on the grant path;
* runner: ``--capacity N`` executes leases concurrently on a thread
  pool and still settles everything exactly once;
* harness: the ``stfm-sim chaos`` invariant checks themselves.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time

import pytest

from repro import faults
from repro.cluster.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.cluster.chaos import ChaosFailure, _check_metrics, fault_spec
from repro.cluster.checkpoint import CheckpointState, CoordinatorCheckpoint
from repro.cluster.coordinator import (
    ClusterCoordinator,
    CoordinatorConfig,
    _owner,
)
from repro.cluster.leases import LeaseTable
from repro.cluster.runner import ClusterRunner, RunnerConfig
from repro.engine.backends import HttpStoreBackend
from repro.service.client import ServiceClient, parse_metrics

from tests.test_cluster import _spec, running_coordinator


@contextlib.contextmanager
def crashed_coordinator(tmp_path, **overrides):
    """Like ``running_coordinator`` but dies like ``kill -9``.

    No drain, no lease expiry, no final checkpoint: the lease files
    and the job store stay exactly as they were mid-flight, which is
    what restart recovery must cope with.
    """
    settings = dict(
        host="127.0.0.1",
        port=0,
        queue_limit=16,
        cache_dir=str(tmp_path / "store"),
        state_dir=str(tmp_path / "state"),
        lease_ttl=10.0,
    )
    settings.update(overrides)
    service = ClusterCoordinator(CoordinatorConfig(**settings))
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(service.start(), loop).result(30)
        yield service, ServiceClient(f"http://127.0.0.1:{service.port}")
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("STFM_SIM_CACHE_DIR", str(tmp_path / "default-store"))
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULT_LOG_ENV, raising=False)


# -- circuit breaker ---------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state == CLOSED and breaker.allow(0.2)
        breaker.record_failure(0.2)
        assert breaker.state == OPEN
        assert breaker.opens == 1
        assert not breaker.allow(0.3)
        assert breaker.seconds_until_probe(0.3) > 0.0

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=0.5)
        breaker.record_failure(0.0)
        retry_at = 0.0 + breaker.seconds_until_probe(0.0)
        assert not breaker.allow(retry_at - 0.01)
        assert breaker.allow(retry_at + 0.01)  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(retry_at + 0.02)  # concurrent caller

    def test_probe_success_closes_and_resets_ladder(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=0.5)
        breaker.record_failure(0.0)
        first_cooldown = breaker.seconds_until_probe(0.0)
        assert breaker.allow(100.0)
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow(100.1)
        # The ladder reset: the next opening starts from the base again.
        breaker.record_failure(200.0)
        assert breaker.seconds_until_probe(200.0) == pytest.approx(
            first_cooldown
        )

    def test_probe_failure_reopens_with_longer_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=0.5,
                                 max_cooldown=64.0)
        breaker.record_failure(0.0)
        first = breaker.seconds_until_probe(0.0)
        assert breaker.allow(100.0)  # half-open probe
        breaker.record_failure(100.0)  # probe fails
        assert breaker.state == OPEN and breaker.opens == 2
        second = breaker.seconds_until_probe(100.0)
        # Exponential: jitter is +/-15%, doubling always dominates it
        # (worst case 2 * 0.85 / 1.15 > 1.4).
        assert second > first * 1.4

    def test_cooldown_is_capped(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=0.5,
                                 max_cooldown=1.0)
        now = 0.0
        for _ in range(6):
            breaker.record_failure(now)
            delay = breaker.seconds_until_probe(now)
            assert delay <= 1.0 * 1.15  # ceiling * max jitter
            now += delay + 0.01
            assert breaker.allow(now)

    def test_jitter_is_deterministic_per_seed(self):
        def schedule(seed):
            breaker = CircuitBreaker(failure_threshold=1, cooldown=0.5,
                                     seed=seed)
            out = []
            now = 0.0
            for _ in range(4):
                breaker.record_failure(now)
                delay = breaker.seconds_until_probe(now)
                out.append(delay)
                now += delay + 0.01
                assert breaker.allow(now)
            return out

        assert schedule("runner-0") == schedule("runner-0")
        assert schedule("runner-0") != schedule("runner-1")

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=2.0, max_cooldown=1.0)
        assert "closed" in CircuitBreaker().describe()


# -- fault spool + replay-stable filtering -----------------------------------


class TestFaultSpool:
    def test_firings_spool_and_read_back(self, tmp_path, monkeypatch):
        spool = tmp_path / "spool"
        monkeypatch.setenv(faults.FAULT_LOG_ENV, str(spool))
        monkeypatch.setenv(faults.FAULTS_ENV, "crash=1.0,refused=1.0")
        assert faults.fires("crash", "job-a:1")
        assert faults.fires("refused", "store-read:k")
        assert faults.fires("crash", "job-a:1")  # dup firing, one entry
        fired = faults.read_spool(str(spool))
        assert fired == {("crash", "job-a:1"), ("refused", "store-read:k")}

    def test_read_spool_of_missing_dir_is_empty(self, tmp_path):
        assert faults.read_spool(str(tmp_path / "nope")) == set()

    def test_replay_stable_excludes_attempt_scoped_keys(self):
        fired = {
            ("crash", "job-a:1"),  # engine attempt streams are stable
            ("truncate", "store-read:k"),  # content-derived: stable
            ("refused", "POST /v1/leases #3.1"),  # wire-scoped: excluded
            ("drop", "GET /healthz #1"),  # drop is never replay-stable
            ("service", "job-9#a2"),  # delivery-scoped: excluded
        }
        assert faults.replay_stable_decisions(fired) == {
            ("crash", "job-a:1"),
            ("truncate", "store-read:k"),
        }


# -- checkpoint --------------------------------------------------------------


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        checkpoint = CoordinatorCheckpoint(tmp_path / "state")
        state = CheckpointState(incarnation=3, resume_recoveries=2,
                                expirations=5, redeliveries=4,
                                late_completions=1)
        checkpoint.save(state)
        assert checkpoint.load() == state

    def test_missing_or_corrupt_degrades_to_default(self, tmp_path):
        checkpoint = CoordinatorCheckpoint(tmp_path / "state")
        assert checkpoint.load() == CheckpointState()
        checkpoint.root.mkdir(parents=True)
        checkpoint.path.write_text("{torn")
        assert checkpoint.load() == CheckpointState()
        checkpoint.path.write_text("[1, 2]")
        assert checkpoint.load() == CheckpointState()

    def test_garbage_fields_are_clamped(self):
        state = CheckpointState.from_dict(
            {"incarnation": "7", "resume_recoveries": -3,
             "expirations": "x", "unknown": 9}
        )
        assert state.incarnation == 7
        assert state.resume_recoveries == 0
        assert state.expirations == 0


class TestLeaseIdPrefix:
    def test_prefix_lands_in_lease_ids(self, tmp_path):
        table = LeaseTable(tmp_path / "leases", ttl=5.0, id_prefix="i2-")
        lease = table.grant("job-1", "d" * 64, "runner-a", now=0.0)
        assert lease.id.startswith("lease-i2-")

    def test_default_prefix_keeps_legacy_ids(self):
        table = LeaseTable(None, ttl=5.0)
        lease = table.grant("job-1", "d" * 64, "runner-a", now=0.0)
        assert lease.id == "lease-000001"


# -- capacity-weighted rendezvous --------------------------------------------


class TestWeightedAffinity:
    def test_equal_capacities_match_legacy_routing(self):
        runners = ["runner-0", "runner-1", "runner-2"]
        digests = [f"{i:064x}" for i in range(60)]
        for digest in digests:
            legacy = _owner(digest, runners)
            assert _owner(digest, runners, {r: 1 for r in runners}) == legacy
            assert _owner(digest, runners, None) == legacy

    def test_higher_capacity_owns_proportionally_more(self):
        runners = ["big", "small"]
        capacities = {"big": 8, "small": 1}
        digests = [f"{i:064x}" for i in range(360)]
        owned_by_big = sum(
            1 for d in digests if _owner(d, runners, capacities) == "big"
        )
        # Expectation is 8/9 (320); a generous band avoids flakiness
        # while still proving the weighting works.
        assert 280 <= owned_by_big < 360

    def test_stability_under_churn_with_weights(self):
        runners = ["a", "b", "c"]
        capacities = {"a": 2, "b": 1, "c": 4}
        digests = [f"{i:064x}" for i in range(50)]
        owners = {d: _owner(d, runners, capacities) for d in digests}
        survivors = ["a", "c"]
        for digest, owner in owners.items():
            if owner in survivors:
                assert _owner(digest, survivors, capacities) == owner


# -- crash-resume across incarnations ----------------------------------------


class TestIncarnationResume:
    def test_restart_bumps_incarnation_and_refuses_stale_leases(
        self, tmp_path
    ):
        with crashed_coordinator(tmp_path) as (first, client):
            view = client.submit(_spec(1))
            status, _, stale = client.request(
                "POST", "/v1/leases", body={"runner": "r-old"}
            )
            assert status == 200
            assert first.incarnation == 1
            assert stale["lease_id"].startswith("lease-i1-")
        # The simulated kill -9 leaves the job leased but unsettled on
        # disk — the restart must resume it.
        with running_coordinator(tmp_path) as (second, client):
            assert second.incarnation == 2
            assert second.resume_recoveries >= 1

            # A late completion from the dead incarnation: refused, and
            # it must not settle the resumed job.
            status, _, body = client.request(
                "POST", f"/v1/leases/{stale['lease_id']}/complete",
                body={"runner": "r-old", "result": {"stale": True}},
            )
            assert status == 410 and body["accepted"] is False
            assert client.job(view["id"])["status"] == "queued"

            # Redelivery in the new incarnation: fresh id space, next
            # attempt number (attempt tracking survives the crash).
            status, _, lease = client.request(
                "POST", "/v1/leases", body={"runner": "r-new"}
            )
            assert status == 200
            assert lease["lease_id"].startswith("lease-i2-")
            assert lease["job_id"] == view["id"]
            assert lease["attempt"] == 2

            status, _, done = client.request(
                "POST", f"/v1/leases/{lease['lease_id']}/complete",
                body={"runner": "r-new",
                      "result": {"kind": "workload", "fake": True},
                      "breaker_opens": 2},
            )
            assert status == 200 and done["accepted"] is True
            assert client.result(view["id"])["status"] == "done"

            metrics = parse_metrics(client.metrics())
            assert metrics["stfm_cluster_incarnation"] == 2
            assert metrics["stfm_cluster_resume_recoveries_total"] >= 1
            assert metrics[
                'stfm_cluster_runner_breaker_opens_total{runner="r-new"}'
            ] == 2

    def test_checkpoint_carries_lease_counter_bases(self, tmp_path):
        with running_coordinator(
            tmp_path, lease_ttl=0.2
        ) as (first, client):
            view = client.submit(_spec(3))
            client.request("POST", "/v1/leases", body={"runner": "r-a"})
            deadline = time.time() + 10
            while time.time() < deadline:
                if first.leases.expirations >= 1:
                    break
                time.sleep(0.05)
            assert first.leases.expirations >= 1
        with running_coordinator(tmp_path, lease_ttl=0.2) as (second, client):
            # The restarted coordinator resumes the counters rather
            # than resetting the time series to zero.
            assert second.leases.expirations >= 1
            metrics = parse_metrics(client.metrics())
            assert metrics["stfm_cluster_lease_expirations_total"] >= 1
            assert view["id"]  # the job itself is still tracked
            assert client.job(view["id"])["status"] in (
                "queued", "running"
            )


# -- conditional PUTs through the store proxy --------------------------------


class TestConditionalPuts:
    def test_second_put_is_a_412_skip_not_a_duplicate(self, tmp_path):
        with running_coordinator(tmp_path) as (service, client):
            url = f"http://127.0.0.1:{service.port}"
            backend = HttpStoreBackend(url)
            backend.write("k" * 64, b'{"probe": 1}')
            backend.write("k" * 64, b'{"probe": 1}')
            assert backend.conditional_skips == 1
            metrics = parse_metrics(client.metrics())
            assert metrics[
                "stfm_store_proxy_conditional_put_skips_total"
            ] == 1
            assert metrics["stfm_store_proxy_duplicate_puts_total"] == 0

    def test_unconditional_put_still_counts_duplicates(self, tmp_path):
        with running_coordinator(tmp_path) as (service, client):
            url = f"http://127.0.0.1:{service.port}"
            backend = HttpStoreBackend(url)
            backend.write("k" * 64, b'{"probe": 1}')
            # A raw unconditional PUT (no If-None-Match) of an existing
            # key is a true duplicate upload and must be counted.
            status, _ = backend._request(
                "PUT", f"/v1/store/{'k' * 64}", body=b'{"probe": 1}'
            )
            assert status == 204
            metrics = parse_metrics(client.metrics())
            assert metrics["stfm_store_proxy_duplicate_puts_total"] == 1


# -- per-runner capacity on the grant path -----------------------------------


class TestCapacityGrants:
    def test_grants_stop_at_declared_capacity(self, tmp_path):
        with running_coordinator(tmp_path) as (_service, client):
            for seed in (1, 2, 3):
                client.submit(_spec(seed))
            status, _, first = client.request(
                "POST", "/v1/leases", body={"runner": "r-cap", "capacity": 2}
            )
            assert status == 200
            status, _, second = client.request(
                "POST", "/v1/leases", body={"runner": "r-cap", "capacity": 2}
            )
            assert status == 200
            # At capacity: the third request is refused even though the
            # queue still has a job.
            status, _, _ = client.request(
                "POST", "/v1/leases", body={"runner": "r-cap", "capacity": 2}
            )
            assert status == 204
            # Completing one lease frees a slot.
            client.request(
                "POST", f"/v1/leases/{first['lease_id']}/complete",
                body={"runner": "r-cap",
                      "result": {"kind": "workload", "fake": True}},
            )
            status, _, third = client.request(
                "POST", "/v1/leases", body={"runner": "r-cap", "capacity": 2}
            )
            assert status == 200
            assert third["job_id"] != second["job_id"]

    def test_malformed_capacity_is_a_400(self, tmp_path):
        with running_coordinator(tmp_path) as (_service, client):
            status, _, _ = client.request(
                "POST", "/v1/leases",
                body={"runner": "r-bad", "capacity": "lots"},
            )
            assert status == 400

    def test_capacity_two_runner_settles_everything(self, tmp_path):
        with running_coordinator(tmp_path) as (service, client):
            views = [client.submit(_spec(seed)) for seed in (1, 2, 3, 4)]
            runner = ClusterRunner(RunnerConfig(
                coordinator=f"http://127.0.0.1:{service.port}",
                runner_id="r-wide",
                poll=0.05,
                max_jobs=4,
                capacity=2,
            ))
            done = threading.Event()

            def drive():
                runner.run()
                done.set()

            thread = threading.Thread(target=drive, daemon=True)
            thread.start()
            assert done.wait(120), "capacity-2 runner did not finish"
            thread.join(10)
            assert runner.jobs_completed == 4
            for view in views:
                final = client.result(view["id"])
                assert final["status"] == "done"
            metrics = parse_metrics(client.metrics())
            assert metrics[
                'stfm_cluster_leases_granted_total{runner="r-wide"}'
            ] == 4


# -- chaos harness invariants ------------------------------------------------


class TestChaosHarness:
    def test_fault_spec_is_seeded_and_covers_network_sites(self):
        spec = fault_spec(7)
        assert "seed=7" in spec
        plan = faults.parse_faults(spec)
        for site in ("refused", "reset", "latency", "partition",
                     "truncate", "corrupt", "write", "crash"):
            assert site in plan.rates

    def _good_metrics(self):
        return {
            "stfm_store_proxy_duplicate_puts_total": 0,
            "stfm_cluster_resume_recoveries_total": 1,
            "stfm_store_proxy_conditional_put_skips_total": 2,
            'stfm_cluster_runner_breaker_opens_total{runner="r-0"}': 1,
        }

    def test_good_metrics_pass(self):
        _check_metrics("t", self._good_metrics())

    @pytest.mark.parametrize(
        "name,bad",
        [
            ("stfm_store_proxy_duplicate_puts_total", 1),
            ("stfm_cluster_resume_recoveries_total", 0),
            ("stfm_store_proxy_conditional_put_skips_total", 0),
            ('stfm_cluster_runner_breaker_opens_total{runner="r-0"}', 0),
        ],
    )
    def test_each_invariant_is_enforced(self, name, bad):
        metrics = self._good_metrics()
        metrics[name] = bad
        with pytest.raises(ChaosFailure):
            _check_metrics("t", metrics)
