"""Tests for SystemConfig and the result records."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.results import ThreadResult, WorkloadResult, format_table


class TestSystemConfig:
    def test_channel_scaling_matches_table2(self):
        """Table 2: 1, 1, 2, 4 channels for 2, 4, 8, 16 cores."""
        assert SystemConfig(num_cores=2).channels == 1
        assert SystemConfig(num_cores=4).channels == 1
        assert SystemConfig(num_cores=8).channels == 2
        assert SystemConfig(num_cores=16).channels == 4

    def test_explicit_channels_override(self):
        assert SystemConfig(num_cores=4, num_channels=2).channels == 2

    def test_mapper_reflects_config(self):
        config = SystemConfig(num_cores=8, num_banks=16, row_buffer_bytes=4096)
        mapper = config.mapper()
        assert mapper.num_channels == 2
        assert mapper.num_banks == 16
        assert mapper.lines_per_row == 512

    def test_memory_key_ignores_core_count(self):
        """Alone baselines are shared between same-memory configs."""
        four = SystemConfig(num_cores=4)
        also_four_channels = SystemConfig(num_cores=2, num_channels=1)
        assert four.memory_key() == also_four_channels.memory_key()

    def test_memory_key_distinguishes_banks(self):
        assert (
            SystemConfig(num_banks=8).memory_key()
            != SystemConfig(num_banks=16).memory_key()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)


def make_result() -> WorkloadResult:
    threads = (
        ThreadResult("a", ipc_alone=1.0, ipc_shared=0.5, mcpi_alone=1.0,
                     mcpi_shared=2.0, slowdown=2.0),
        ThreadResult("b", ipc_alone=2.0, ipc_shared=1.0, mcpi_alone=0.5,
                     mcpi_shared=2.0, slowdown=4.0),
    )
    return WorkloadResult(policy="TEST", threads=threads)


class TestWorkloadResult:
    def test_unfairness(self):
        assert make_result().unfairness == 2.0

    def test_weighted_speedup(self):
        assert make_result().weighted_speedup == pytest.approx(1.0)

    def test_sum_of_ipcs(self):
        assert make_result().sum_of_ipcs == pytest.approx(1.5)

    def test_summary_row_keys(self):
        row = make_result().summary_row()
        assert set(row) == {
            "policy",
            "unfairness",
            "weighted_speedup",
            "hmean_speedup",
            "sum_of_ipcs",
        }

    def test_relative_ipc(self):
        assert make_result().threads[0].relative_ipc == 0.5


class TestFormatTable:
    def test_alignment_and_precision(self):
        text = format_table(["name", "x"], [["a", 1.23456], ["bb", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text and "1.2345" not in text

    def test_empty_rows(self):
        text = format_table(["h1", "h2"], [])
        assert "h1" in text
