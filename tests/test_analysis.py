"""Tests for the paper-comparison and report-generation machinery."""

import pytest

from repro.analysis.compare import (
    OrderingCheck,
    ordering_agreement,
    spread,
    stfm_is_best,
    trend_direction,
)
from repro.analysis.paper_data import PAPER_UNFAIRNESS, POLICY_ORDER
from repro.analysis.report import generate_report


class TestOrderingAgreement:
    def test_full_agreement(self):
        paper = {"A": 5.0, "B": 2.0, "C": 1.0}
        measured = {"A": 3.0, "B": 2.5, "C": 1.1}
        check = ordering_agreement(paper, measured)
        assert check.score == 1.0
        assert check.comparisons == 3

    def test_disagreement_recorded(self):
        paper = {"A": 5.0, "B": 1.0}
        measured = {"A": 1.0, "B": 5.0}
        check = ordering_agreement(paper, measured)
        assert check.score == 0.0
        assert check.disagreements == (("A", "B"),)

    def test_none_values_skipped(self):
        paper = {"A": 5.0, "B": None, "C": 1.0}
        measured = {"A": 3.0, "B": 100.0, "C": 1.0}
        check = ordering_agreement(paper, measured)
        assert check.comparisons == 1

    def test_paper_ties_skipped(self):
        paper = {"A": 2.07, "B": 2.08}  # the paper's FCFS vs Cap tie
        measured = {"A": 3.0, "B": 1.0}
        check = ordering_agreement(paper, measured)
        assert check.comparisons == 0
        assert check.score == 1.0

    def test_missing_measured_key_skipped(self):
        paper = {"A": 5.0, "B": 1.0}
        measured = {"A": 3.0}
        assert ordering_agreement(paper, measured).comparisons == 0


class TestHelpers:
    def test_stfm_is_best(self):
        assert stfm_is_best({"STFM": 1.0, "FR-FCFS": 2.0})
        assert not stfm_is_best({"STFM": 3.0, "FR-FCFS": 2.0})
        with pytest.raises(KeyError):
            stfm_is_best({"FR-FCFS": 2.0})

    def test_trend_direction(self):
        assert trend_direction([1.0, 2.0, 3.0]) == "increasing"
        assert trend_direction([3.0, 2.0, 1.0]) == "decreasing"
        assert trend_direction([1.0, 1.01, 0.99]) == "flat"
        assert trend_direction([1.0, 2.0, 1.0]) == "mixed"
        assert trend_direction([1.0]) == "flat"

    def test_spread(self):
        assert spread({"a": 4.0, "b": 2.0, "c": None}) == 2.0
        with pytest.raises(ValueError):
            spread({"a": None})

    def test_ordering_check_str(self):
        assert "2/3" in str(OrderingCheck(2, 3))


class TestPaperData:
    def test_all_case_studies_have_all_policies(self):
        for experiment_id in ("fig6", "fig7", "fig8", "fig10", "fig13", "fig9"):
            values = PAPER_UNFAIRNESS[experiment_id]
            assert set(values) == set(POLICY_ORDER)
            assert all(v is not None for v in values.values())

    def test_stfm_always_best_in_paper(self):
        """Sanity: the transcribed numbers show STFM winning everywhere
        the paper quotes a full set."""
        for values in PAPER_UNFAIRNESS.values():
            present = {k: v for k, v in values.items() if v is not None}
            if "STFM" in present:
                assert present["STFM"] == min(present.values())


class TestGenerateReport:
    def _case_study_result(self):
        return {
            "experiment_id": "fig6",
            "title": "t",
            "paper_reference": "",
            "rows": [
                {"policy": "FR-FCFS", "unfairness": 4.0},
                {"policy": "FCFS", "unfairness": 2.0},
                {"policy": "FR-FCFS+Cap", "unfairness": 1.9},
                {"policy": "NFQ", "unfairness": 1.7},
                {"policy": "STFM", "unfairness": 1.2},
            ],
            "extras": {},
        }

    def test_case_study_section(self):
        report = generate_report([self._case_study_result()])
        assert "fig6" in report
        assert "STFM fairest: **yes**" in report
        assert "| FR-FCFS | 7.28 | 4.00 |" in report

    def test_unknown_experiments_rendered_generically(self):
        result = {
            "experiment_id": "ablate-gamma",
            "title": "gamma sweep",
            "paper_reference": "ref",
            "rows": [{"gamma": 0.5, "unfairness": 1.3}],
            "extras": {},
        }
        report = generate_report([result])
        assert "ablate-gamma" in report
        assert "gamma sweep" in report

    def test_full_results_file_round_trip(self, tmp_path):
        """The report generator handles a real results file end to end."""
        from repro.experiments import run_experiment
        from repro.experiments.base import Scale
        from repro.experiments.io import result_to_dict

        results = [
            result_to_dict(run_experiment("fig6", scale=Scale(budget=2_000)))
        ]
        report = generate_report(results)
        assert "pairwise ordering" in report
