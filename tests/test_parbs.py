"""Tests for the PAR-BS extension scheduler."""

import pytest

from repro.schedulers.parbs import ParBsPolicy
from repro.schedulers.registry import available_policies, make_policy
from tests.conftest import ControllerHarness


class TestConstruction:
    def test_marking_cap_validation(self):
        with pytest.raises(ValueError):
            ParBsPolicy(2, marking_cap=0)

    def test_registry(self):
        policy = make_policy("par-bs", num_threads=4, marking_cap=3)
        assert isinstance(policy, ParBsPolicy)
        assert policy.marking_cap == 3

    def test_not_in_paper_order_but_in_extensions(self):
        assert "par-bs" not in available_policies()
        assert "par-bs" in available_policies(include_extensions=True)


class TestBatching:
    def test_batch_forms_when_requests_arrive(self):
        policy = ParBsPolicy(2)
        harness = ControllerHarness(policy=policy, num_threads=2)
        harness.submit(0, bank=0, row=1)
        harness.tick()
        assert policy.batches_formed == 1
        assert policy.marked_remaining >= 0

    def test_marking_cap_limits_per_thread_per_bank(self):
        policy = ParBsPolicy(2, marking_cap=2)
        harness = ControllerHarness(policy=policy, num_threads=2)
        for column in range(6):
            harness.submit(0, bank=0, row=1, column=column)
        harness.tick()
        # Only 2 of thread 0's 6 bank-0 requests are marked; one may
        # already have been serviced this tick.
        assert policy.marked_remaining <= 2

    def test_new_batch_after_previous_drains(self):
        policy = ParBsPolicy(2, marking_cap=1)
        harness = ControllerHarness(policy=policy, num_threads=2)
        harness.submit(0, bank=0, row=1, column=0)
        harness.submit(0, bank=0, row=1, column=1)
        harness.run_until_done()
        assert policy.batches_formed >= 2

    def test_unmarked_stream_cannot_starve_marked_batch(self):
        """The batching guarantee: once a batch forms, later-arriving row
        hits from another thread wait for it."""
        policy = ParBsPolicy(2, marking_cap=4)
        harness = ControllerHarness(policy=policy, num_threads=2)
        # Open thread 1's stream row first.
        harness.submit(1, bank=0, row=9, column=0)
        harness.run_until_done()
        harness.pending.clear()
        # Victim's conflict request enters and is batched.
        victim = harness.submit(0, bank=0, row=2)
        harness.tick(1)  # batch forms with the victim marked
        # Attacker floods row hits (unmarked: the batch already formed).
        hits = [harness.submit(1, bank=0, row=9, column=1 + c) for c in range(8)]
        harness.pending = [victim] + hits
        harness.run_until_done()
        serviced_before = sum(
            1 for h in hits if h.completed_at < victim.completed_at
        )
        assert serviced_before <= 2  # bounded, unlike FR-FCFS's 8

    def test_light_thread_ranked_above_heavy(self):
        policy = ParBsPolicy(2)
        harness = ControllerHarness(policy=policy, num_threads=2)
        for column in range(5):
            harness.submit(0, bank=0, row=1, column=column)  # heavy
        harness.submit(1, bank=1, row=1)  # light
        harness.tick()
        assert policy._rank_priority[1] > policy._rank_priority[0]


class TestEndToEnd:
    def test_fairer_than_frfcfs_on_case_study(self):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import ExperimentRunner

        runner = ExperimentRunner(
            SystemConfig(num_cores=4), instruction_budget=6_000
        )
        workload = ["mcf", "libquantum", "GemsFDTD", "astar"]
        frfcfs = runner.run_workload(workload, "fr-fcfs")
        parbs = runner.run_workload(workload, "par-bs")
        assert parbs.unfairness < frfcfs.unfairness

    def test_extension_experiment_includes_parbs(self):
        from repro.experiments import run_experiment
        from repro.experiments.base import Scale

        result = run_experiment("extension-parbs", scale=Scale(budget=2_000))
        policies = {row["policy"] for row in result.rows}
        assert "par-bs" in policies or "PAR-BS" in policies
