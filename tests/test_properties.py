"""Property-based tests of system-level invariants.

Random request streams are pushed through the controller under every
scheduling policy; the invariants checked are the ones any correct
memory controller must uphold:

* every admitted request eventually completes (no starvation deadlock);
* the data bus never carries two bursts at once;
* bank timing is respected (commands never issue to a busy bank);
* a request's completion time is at least the uncontended minimum.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.stfm import StfmPolicy
from repro.dram.commands import CommandKind
from repro.schedulers.fcfs import FcfsPolicy
from repro.schedulers.frfcfs import FrFcfsPolicy
from repro.schedulers.frfcfs_cap import FrFcfsCapPolicy
from repro.schedulers.nfq import NfqPolicy
from repro.schedulers.parbs import ParBsPolicy
from tests.conftest import ControllerHarness


def make_policy_instance(name: str, num_threads: int):
    return {
        "fr-fcfs": lambda: FrFcfsPolicy(),
        "fcfs": lambda: FcfsPolicy(),
        "fr-fcfs+cap": lambda: FrFcfsCapPolicy(),
        "nfq": lambda: NfqPolicy(num_threads),
        "stfm": lambda: StfmPolicy(num_threads),
        "par-bs": lambda: ParBsPolicy(num_threads),
    }[name]()


request_stream = st.lists(
    st.tuples(
        st.integers(0, 3),     # thread
        st.integers(0, 7),     # bank
        st.integers(0, 15),    # row
        st.integers(0, 31),    # column
        st.booleans(),         # is_write
        st.integers(0, 3),     # submit gap in DRAM cycles
    ),
    min_size=1,
    max_size=40,
)

policy_names = st.sampled_from(
    ["fr-fcfs", "fcfs", "fr-fcfs+cap", "nfq", "stfm", "par-bs"]
)


class InstrumentedHarness(ControllerHarness):
    """Harness that additionally checks per-issue invariants via a
    wrapped policy hook."""

    def __init__(self, policy):
        super().__init__(policy=policy, num_threads=4)
        self.violations: list[str] = []
        controller = self.controller
        original_issue = controller._issue

        def checked_issue(channel, candidate, scan, now):
            bank = channel.banks[candidate.bank_index]
            if now < bank.busy_until:
                self.violations.append(
                    f"command to busy bank at {now} < {bank.busy_until}"
                )
            if candidate.kind.is_column and now + self.timing.cl < (
                channel.data_bus_busy_until
            ):
                self.violations.append(f"data bus overlap at {now}")
            if candidate.kind is CommandKind.PRECHARGE and bank.open_row is not None:
                if now < bank.activated_at + self.timing.ras:
                    self.violations.append(f"tRAS violation at {now}")
            original_issue(channel, candidate, scan, now)

        controller._issue = checked_issue


@given(stream=request_stream, policy_name=policy_names)
@settings(max_examples=60, deadline=None)
def test_all_requests_complete_and_timing_is_legal(stream, policy_name):
    harness = InstrumentedHarness(make_policy_instance(policy_name, 4))
    writes = []
    for thread, bank, row, column, is_write, gap in stream:
        harness.tick(gap)
        request = harness.submit(
            thread, bank=bank, row=row, column=column, is_write=is_write
        )
        if is_write:
            writes.append(request)
    reads = list(harness.pending)
    harness.run_until_done()
    # Reads all complete...
    assert all(r.completed_at is not None for r in reads)
    # ...writes eventually drain too (no reads pending -> drain mode).
    for _ in range(5_000):
        if all(w.completed_at is not None for w in writes):
            break
        harness.tick()
    assert all(w.completed_at is not None for w in writes)
    assert harness.violations == []


@given(stream=request_stream, policy_name=policy_names)
@settings(max_examples=30, deadline=None)
def test_completion_time_at_least_uncontended_minimum(stream, policy_name):
    harness = InstrumentedHarness(make_policy_instance(policy_name, 4))
    for thread, bank, row, column, is_write, gap in stream:
        harness.tick(gap)
        harness.submit(thread, bank=bank, row=row, column=column)
    done = harness.run_until_done()
    minimum = harness.timing.row_hit_latency()
    for request in done:
        assert request.completed_at - request.arrival >= minimum


@given(stream=request_stream)
@settings(max_examples=30, deadline=None)
def test_request_conservation(stream):
    """Enqueued reads == completed reads; queues end empty."""
    harness = InstrumentedHarness(FrFcfsPolicy())
    for thread, bank, row, column, _, gap in stream:
        harness.tick(gap)
        harness.submit(thread, bank=bank, row=row, column=column)
    harness.run_until_done()
    completed = sum(
        stats.reads_completed for stats in harness.controller.thread_stats
    )
    assert completed == len(harness.pending)
    assert harness.controller.queues.total_reads() == 0


@given(stream=request_stream)
@settings(max_examples=20, deadline=None)
def test_stfm_interference_never_exceeds_total_wait(stream):
    """A thread's estimated interference is bounded by what the Section
    3.2.2 update rules can charge per issued command.

    Each command charges a given thread at most its un-overlapped service
    latency over ``gamma * parallelism`` (bank rule, parallelism >= 1)
    plus ``tBus`` (bus rule) or the hit-vs-conflict latency delta (own
    thread rule), both dominated by the conflict latency.  Note the
    estimate may legitimately exceed the wall-clock duration: the rules
    charge un-overlapped latencies, so pipelined commands each contribute
    in full (an earlier version asserted ``duration / gamma`` here, which
    a two-request same-bank stream falsifies).
    """
    policy = StfmPolicy(4)
    harness = InstrumentedHarness(policy)
    for thread, bank, row, column, _, gap in stream:
        harness.tick(gap)
        harness.submit(thread, bank=bank, row=row, column=column)
    harness.run_until_done()
    timing = harness.timing
    per_command = (
        timing.row_conflict_latency() / policy.gamma + timing.t_bus
    )
    bound = harness.controller.commands_issued * per_command
    for registers in policy.registers.threads:
        assert registers.t_interference <= bound
