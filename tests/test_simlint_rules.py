"""Concurrency + protocol rule families, pipeline cache, and formats.

Every SIM1xx rule is exercised twice from fixtures under
``tests/lint_fixtures/``: a ``*_pos.py`` snippet that must fire it and
a ``*_neg.py`` snippet that must stay silent — no rule is allowed to
be vacuously clean.  The real coordinator/runner sources are checked
against the lease model, the incremental cache is proven to re-lint a
warm tree with zero parses, and the machine formats are pinned by a
golden file.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.cache import LintCache
from repro.analysis.simlint import (
    LintConfig,
    lint_items,
    lint_sources,
    render_json,
    render_sarif,
    run_simlint,
)
from repro.cluster.lease_model import (
    API_CONTRACT,
    HANDLER_OPS,
    HANDLER_ROUTES,
    LEASE_TRANSITIONS,
    LeaseProtocolViolation,
    LeaseSanitizer,
)

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"

NEW_RULES = [
    "SIM101", "SIM102", "SIM103", "SIM104", "SIM105", "SIM106",
    "SIM107", "SIM108", "SIM109",
]


def fixture_items(name: str):
    """(virtual_path, source) for one fixture, honoring ``# lint-as:``."""
    source = (FIXTURES / name).read_text()
    path = "src/repro/service/fixture.py"
    first = source.splitlines()[0] if source else ""
    if first.startswith("# lint-as:"):
        path = first.split(":", 1)[1].strip()
    return [(path, source)]


def codes(findings):
    return [finding.code for finding in findings]


class TestFixtures:
    @pytest.mark.parametrize("code", NEW_RULES)
    def test_positive_fixture_fires(self, code):
        name = f"{code.lower()}_pos.py"
        found = codes(lint_sources(fixture_items(name)))
        assert code in found, f"{name} must fire {code}, got {found}"

    @pytest.mark.parametrize("code", NEW_RULES)
    def test_negative_fixture_stays_silent(self, code):
        name = f"{code.lower()}_neg.py"
        found = codes(lint_sources(fixture_items(name)))
        assert code not in found, f"{name} must not fire {code}: {found}"

    @pytest.mark.parametrize("code", NEW_RULES)
    def test_suppression_silences_new_rules(self, code):
        [(path, source)] = fixture_items(f"{code.lower()}_pos.py")
        silenced = "\n".join(
            f"{line}  # simlint: disable" for line in source.splitlines()
        )
        assert codes(lint_sources([(path, silenced)])) == []


class TestLeaseModelStatic:
    def test_real_cluster_sources_pass_protocol_rules(self):
        config = LintConfig(enable=frozenset({"SIM107", "SIM108"}))
        findings = run_simlint([str(REPO / "src" / "repro" / "cluster")],
                               config)
        assert findings == []

    def test_model_tables_are_consistent(self):
        # every route a handler claims exists in the contract, every
        # handler performing transitions is a declared handler, and
        # the state machine covers every transition op except grant
        # (which starts from idle).
        for route in HANDLER_ROUTES.values():
            assert route in API_CONTRACT
        assert set(HANDLER_ROUTES) <= set(HANDLER_OPS)
        granted_ops = {
            op for (_state, op) in LEASE_TRANSITIONS if _state == "granted"
        }
        assert granted_ops == {
            "heartbeat", "complete", "expire_due", "recover"
        }


class TestLeaseSanitizer:
    def test_legal_lifecycle_passes(self):
        sanitizer = LeaseSanitizer()
        sanitizer.observe_grant("l1", "j1", "r1", 1)
        sanitizer.observe_heartbeat("l1", hit=True)
        sanitizer.observe_complete("l1", hit=True)
        # late duplicate refused after settle: legal
        sanitizer.observe_complete("l1", hit=False)
        assert sanitizer.transitions_checked == 4
        assert "j1" in sanitizer.settled

    def test_expiry_and_redelivery_passes(self):
        sanitizer = LeaseSanitizer()
        sanitizer.observe_grant("l1", "j1", "r1", 1)
        sanitizer.observe_expire("l1")
        sanitizer.observe_heartbeat("l1", hit=False)
        sanitizer.observe_grant("l2", "j1", "r2", 2)
        sanitizer.observe_complete("l2", hit=True)

    def test_double_grant_raises(self):
        sanitizer = LeaseSanitizer()
        sanitizer.observe_grant("l1", "j1", "r1", 1)
        with pytest.raises(LeaseProtocolViolation, match="at most one"):
            sanitizer.observe_grant("l2", "j1", "r2", 2)

    def test_grant_after_settle_raises(self):
        sanitizer = LeaseSanitizer()
        sanitizer.observe_grant("l1", "j1", "r1", 1)
        sanitizer.observe_complete("l1", hit=True)
        with pytest.raises(LeaseProtocolViolation, match="settled"):
            sanitizer.observe_grant("l2", "j1", "r1", 2)

    def test_non_monotonic_attempt_raises(self):
        sanitizer = LeaseSanitizer()
        sanitizer.observe_grant("l1", "j1", "r1", 1)
        sanitizer.observe_expire("l1")
        with pytest.raises(LeaseProtocolViolation, match="monotonically"):
            sanitizer.observe_grant("l2", "j1", "r1", 1)

    def test_lost_live_lease_raises(self):
        sanitizer = LeaseSanitizer()
        sanitizer.observe_grant("l1", "j1", "r1", 1)
        with pytest.raises(LeaseProtocolViolation, match="lost a live"):
            sanitizer.observe_heartbeat("l1", hit=False)

    def test_violation_carries_history_window(self):
        sanitizer = LeaseSanitizer()
        sanitizer.observe_grant("l1", "j1", "r1", 1)
        with pytest.raises(LeaseProtocolViolation) as excinfo:
            sanitizer.observe_grant("l2", "j1", "r2", 2)
        assert any(e.op == "grant" for e in excinfo.value.window)

    def test_lease_table_wires_sanitizer_from_env(self, monkeypatch):
        from repro.cluster.leases import LeaseTable

        monkeypatch.setenv("STFM_SIM_LEASE_SANITIZE", "1")
        table = LeaseTable(None, ttl=5.0)
        assert table.sanitizer is not None
        lease = table.grant("j1", "d1", "r1", now=0.0)
        table.heartbeat(lease.id, now=1.0)
        assert table.complete(lease.id) is not None
        assert table.sanitizer.transitions_checked == 3

        monkeypatch.setenv("STFM_SIM_LEASE_SANITIZE", "0")
        assert LeaseTable(None, ttl=5.0).sanitizer is None

    def test_lease_table_expiry_path_is_observed(self, monkeypatch):
        from repro.cluster.leases import LeaseTable

        monkeypatch.setenv("STFM_SIM_LEASE_SANITIZE", "1")
        table = LeaseTable(None, ttl=5.0)
        lease = table.grant("j1", "d1", "r1", now=0.0)
        assert table.expire_due(now=10.0) == [lease]
        assert table.complete(lease.id) is None  # late duplicate
        regrant = table.grant("j1", "d1", "r2", now=11.0)
        assert regrant.attempt == 2
        assert table.sanitizer.transitions_checked == 4


class TestIncrementalCache:
    def _items(self):
        items = []
        for fixture in sorted(FIXTURES.glob("sim*_*.py")):
            [(path, source)] = fixture_items(fixture.name)
            items.append((f"{fixture.stem}/{path}", source))
        return items

    def test_warm_run_does_zero_parses(self, tmp_path):
        items = self._items()
        cold_cache = LintCache(str(tmp_path / "cache"))
        cold = lint_items(items, cache=cold_cache)
        assert cold.stats.parsed == len(items)
        cold_cache.save()

        warm_cache = LintCache(str(tmp_path / "cache"))
        warm = lint_items(items, cache=warm_cache)
        assert warm.stats.parsed == 0
        assert warm.stats.findings_reused == len(items)
        assert warm.findings == cold.findings

    def test_edit_invalidates_findings_but_not_indexes(self, tmp_path):
        items = self._items()
        cache = LintCache(str(tmp_path / "cache"))
        lint_items(items, cache=cache)
        cache.save()

        changed = list(items)
        path, source = changed[0]
        changed[0] = (path, source + "\n# touched\n")
        rerun_cache = LintCache(str(tmp_path / "cache"))
        rerun = lint_items(changed, cache=rerun_cache)
        # unchanged files reuse their index contributions...
        assert rerun.stats.index_reused == len(items) - 1
        # ...but cross-file rules force findings to be recomputed.
        assert rerun.stats.findings_reused == 0

    def test_no_cache_path_still_lints(self):
        items = self._items()
        result = lint_items(items, cache=None)
        assert result.stats.parsed == len(items)

    def test_corrupt_manifest_is_discarded(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "manifest.json").write_text("{not json")
        cache = LintCache(str(root))
        result = lint_items(self._items(), cache=cache)
        assert result.stats.parsed == len(self._items())


class TestOutputFormats:
    def _findings(self):
        config = LintConfig(enable=frozenset({"SIM101"}))
        return lint_sources(fixture_items("sim101_pos.py"), config)

    def test_json_matches_golden(self):
        rendered = render_json(self._findings())
        golden = (FIXTURES / "golden_sim101.json").read_text().rstrip("\n")
        assert rendered == golden

    def test_json_is_machine_readable(self):
        payload = json.loads(render_json(self._findings()))
        assert payload["version"] == 1
        assert payload["count"] == len(payload["findings"]) > 0
        first = payload["findings"][0]
        assert set(first) == {
            "path", "line", "col", "code", "message", "fixit"
        }

    def test_sarif_shape(self):
        findings = self._findings()
        sarif = json.loads(render_sarif(findings))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        assert len(run["results"]) == len(findings)
        result = run["results"][0]
        assert result["ruleId"] == "SIM101"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == findings[0].line
