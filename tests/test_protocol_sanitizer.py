"""Tests for the runtime DRAM protocol sanitizer.

Two layers: direct command streams driven at the sanitizer (each DDR2
constraint violated by a minimal stream, asserting the rule and the
offending command window), and whole-simulation runs with the sanitizer
attached (zero violations, results bit-identical to unsanitized runs).
"""

import pytest

from repro.analysis.protocol import (
    SANITIZE_ENV,
    ProtocolSanitizer,
    ProtocolViolation,
    sanitize_enabled,
)
from repro.dram.commands import CommandKind
from repro.dram.timing import DramTiming

# Default DDR2-800 at 4 GHz, in CPU cycles:
#   tCL = tRCD = tRP = 60, tRAS = 180, burst = 40, tCCD = 40,
#   one DRAM cycle = 10.
TIMING = DramTiming()

ACT = CommandKind.ACTIVATE
PRE = CommandKind.PRECHARGE
READ = CommandKind.READ
WRITE = CommandKind.WRITE


def make_sanitizer(timing=TIMING, channels=1, banks=2):
    return ProtocolSanitizer(timing, channels, banks)


def play(sanitizer, stream):
    """Feed (cycle, bank, kind, row) commands on channel 0."""
    for cycle, bank, kind, row in stream:
        sanitizer.observe(0, bank, kind, row, cycle)


class TestLegalStreams:
    def test_open_page_read_sequence(self):
        sanitizer = make_sanitizer()
        play(
            sanitizer,
            [
                (0, 0, ACT, 7),
                (60, 0, READ, 7),     # tRCD satisfied exactly
                (100, 0, READ, 7),    # row hit, one burst later
                (240, 0, PRE, 7),     # tRAS satisfied (180) and bank idle
                (300, 0, ACT, 9),     # tRP satisfied exactly
            ],
        )
        assert sanitizer.commands_checked == 5

    def test_banks_are_independent(self):
        sanitizer = make_sanitizer()
        play(
            sanitizer,
            [
                (0, 0, ACT, 7),
                (10, 1, ACT, 3),      # other bank, next DRAM cycle
                (60, 0, READ, 7),
                (100, 1, READ, 3),    # data bus drains in order
            ],
        )

    def test_write_then_read_without_turnaround_configured(self):
        # Default tWTR = 0: the model's in-order bus spacing suffices.
        sanitizer = make_sanitizer()
        play(
            sanitizer,
            [(0, 0, ACT, 7), (60, 0, WRITE, 7), (100, 0, READ, 7)],
        )


def expect_violation(rule, stream, timing=TIMING):
    sanitizer = make_sanitizer(timing)
    with pytest.raises(ProtocolViolation) as excinfo:
        play(sanitizer, stream)
    violation = excinfo.value
    assert violation.rule == rule
    return violation


class TestViolations:
    def test_trcd_read_too_soon_after_activate(self):
        violation = expect_violation(
            "tRCD", [(0, 0, ACT, 7), (50, 0, READ, 7)]
        )
        # The window carries the offending command and its cause.
        assert violation.command.kind == "READ"
        assert violation.command.cycle == 50
        kinds = [entry.kind for entry in violation.window]
        assert kinds == ["ACTIVATE", "READ"]

    def test_trp_activate_too_soon_after_precharge(self):
        violation = expect_violation(
            "tRP",
            [
                (0, 0, ACT, 7),
                (60, 0, READ, 7),
                (240, 0, PRE, 7),
                (250, 0, ACT, 9),  # precharge completes at 300
            ],
        )
        assert violation.command.kind == "ACTIVATE"
        assert [entry.kind for entry in violation.window][-2:] == [
            "PRECHARGE", "ACTIVATE",
        ]

    def test_tras_precharge_too_soon_after_activate(self):
        violation = expect_violation(
            "tRAS", [(0, 0, ACT, 7), (100, 0, PRE, 7)]
        )
        assert violation.command.cycle == 100

    def test_twtr_read_inside_write_turnaround(self):
        timing = DramTiming(t_wtr_ns=7.5)  # 30 CPU cycles
        assert timing.wtr == 30
        expect_violation(
            "tWTR",
            [
                (0, 0, ACT, 7),
                (60, 0, WRITE, 7),   # write data occupies until 160
                (160, 0, READ, 7),   # legal bus-wise, inside tWTR
            ],
            timing=timing,
        )

    def test_tccd_column_commands_too_close(self):
        # Give the data bus slack so tCCD is the binding constraint.
        timing = DramTiming(t_ccd_ns=20.0)  # 80 cycles, burst is 40
        expect_violation(
            "tCCD",
            [(0, 0, ACT, 7), (60, 0, READ, 7), (120, 0, READ, 7)],
            timing=timing,
        )

    def test_data_bus_conflict(self):
        # Drop tCCD to zero so the bus overlap check is the one firing:
        # bank 1's read would put data on the bus before bank 0 drains.
        timing = DramTiming(t_ccd_ns=0.0)
        expect_violation(
            "DATA_BUS",
            [
                (0, 0, ACT, 7),
                (10, 1, ACT, 3),
                (70, 0, READ, 7),    # data on bus [130, 170)
                (80, 1, READ, 3),    # would start at 140
            ],
            timing=timing,
        )

    def test_command_bus_two_commands_in_one_dram_cycle(self):
        expect_violation(
            "CMD_BUS", [(0, 0, ACT, 7), (5, 1, ACT, 3)]
        )

    def test_row_state_read_with_no_open_row(self):
        expect_violation("ROW_STATE", [(0, 0, READ, 7)])

    def test_row_state_read_wrong_row(self):
        expect_violation(
            "ROW_STATE", [(0, 0, ACT, 7), (60, 0, READ, 8)]
        )

    def test_row_state_activate_with_row_open(self):
        expect_violation(
            "ROW_STATE", [(0, 0, ACT, 7), (300, 0, ACT, 8)]
        )

    def test_bank_busy_column_during_burst(self):
        expect_violation(
            "BANK_BUSY",
            [(0, 0, ACT, 7), (60, 0, READ, 7), (90, 0, READ, 7)],
        )

    def test_trc_activate_after_fast_refresh(self):
        # A tiny tRFC lets the bank reopen before tRC=tRAS+tRP elapses:
        # the refresh path must not become a tRC loophole.
        timing = DramTiming(t_rfc_ns=1.0)
        sanitizer = make_sanitizer(timing)
        sanitizer.observe(0, 0, ACT, 7, 0)
        sanitizer.on_refresh(0, 10)
        with pytest.raises(ProtocolViolation) as excinfo:
            sanitizer.observe(0, 0, ACT, 7, 70)
        assert excinfo.value.rule == "tRC"

    def test_auto_precharge_respects_tras(self):
        sanitizer = make_sanitizer()
        sanitizer.observe(0, 0, ACT, 7, 0)
        with pytest.raises(ProtocolViolation) as excinfo:
            sanitizer.on_auto_precharge(0, 0, 100, 100)
        assert excinfo.value.rule == "tRAS"

    def test_violation_message_includes_window(self):
        violation = expect_violation(
            "tRCD", [(0, 0, ACT, 7), (50, 0, READ, 7)]
        )
        text = str(violation)
        assert "tRCD" in text
        assert "command window" in text
        assert "ACTIVATE" in text and "READ" in text


class TestSanitizedSimulations:
    """Whole simulations with the sanitizer attached stay violation-free
    and bit-identical to unsanitized runs."""

    WORKLOAD = ["mcf", "libquantum"]
    BUDGET = 4_000

    def _run(self, sanitize, **config_kwargs):
        from repro.engine.jobs import build_trace, resolve_spec
        from repro.schedulers.registry import make_policy
        from repro.sim.config import SystemConfig
        from repro.sim.system import CmpSystem

        config = SystemConfig(num_cores=2, **config_kwargs)
        specs = [resolve_spec(name) for name in self.WORKLOAD]
        traces = [
            build_trace(config, 0, spec, self.BUDGET, i, len(specs))
            for i, spec in enumerate(specs)
        ]
        policy = make_policy("stfm", num_threads=len(specs))
        system = CmpSystem(
            config, traces, policy, self.BUDGET, sanitize=sanitize
        )
        snapshots = system.run()
        return system, [
            (s.instructions, s.cycles, s.memory_stall_cycles, s.reads_issued)
            for s in snapshots
        ]

    @pytest.mark.parametrize(
        "config_kwargs",
        [{}, {"page_policy": "closed"}, {"refresh_enabled": True}],
        ids=["open-page", "closed-page", "refresh"],
    )
    def test_zero_violations_and_bit_identical(self, config_kwargs):
        plain_system, plain = self._run(False, **config_kwargs)
        sane_system, sane = self._run(True, **config_kwargs)
        assert plain_system.sanitizer is None
        assert sane_system.sanitizer is not None
        assert sane_system.sanitizer.commands_checked > 0
        assert plain == sane

    def test_env_toggle_attaches_sanitizer(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert sanitize_enabled()
        system, _ = self._run(None)
        assert system.sanitizer is not None
        monkeypatch.setenv(SANITIZE_ENV, "0")
        assert not sanitize_enabled()

    def test_cli_run_with_sanitize(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main as cli_main

        # Register the env key with monkeypatch so the CLI's write to
        # os.environ is undone at teardown.
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        monkeypatch.setenv("STFM_SIM_CACHE_DIR", str(tmp_path / "store"))
        code = cli_main(
            ["run", "fig1", "--scale", "tiny", "--no-cache", "--sanitize"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sanitizer enabled" in out
        assert "fig1" in out

    def test_parallel_engine_inherits_sanitizer(self, monkeypatch, tmp_path):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import ExperimentRunner

        monkeypatch.setenv(SANITIZE_ENV, "1")
        runner = ExperimentRunner(
            SystemConfig(num_cores=2),
            instruction_budget=self.BUDGET,
            jobs=2,
            cache_dir=str(tmp_path / "store"),
        )
        result = runner.run_workload(self.WORKLOAD, "stfm")
        monkeypatch.setenv(SANITIZE_ENV, "0")
        plain = ExperimentRunner(
            SystemConfig(num_cores=2), instruction_budget=self.BUDGET
        ).run_workload(self.WORKLOAD, "stfm")
        assert [t.slowdown for t in result.threads] == [
            t.slowdown for t in plain.threads
        ]
