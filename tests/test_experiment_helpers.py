"""Tests for the shared experiment shapes (case_study / policy_sweep)."""

import pytest

from repro.experiments.base import Scale
from repro.experiments.common import case_study, make_runner, policy_sweep

TINY = Scale(budget=2_000, samples=1)


@pytest.fixture(scope="module")
def runner():
    return make_runner(2, TINY)


class TestCaseStudy:
    def test_rows_and_tables(self, runner):
        rows, text = case_study(
            runner, ["mcf", "GemsFDTD"], policies=["fr-fcfs", "stfm"]
        )
        assert len(rows) == 2
        for row in rows:
            assert {"policy", "unfairness", "weighted_speedup"} <= set(row)
            assert "slowdown:mcf" in row
        assert "workload: mcf+GemsFDTD" in text
        assert "unfairness" in text

    def test_chart_included(self, runner):
        _, text = case_study(
            runner, ["mcf", "GemsFDTD"], policies=["fr-fcfs"]
        )
        assert "memory slowdowns (paper-figure shape):" in text
        assert "█" in text

    def test_policy_kwargs_forwarded(self, runner):
        rows, _ = case_study(
            runner,
            ["mcf", "GemsFDTD"],
            policies=["stfm"],
            policy_kwargs={"stfm": {"weights": [1.0, 4.0]}},
        )
        assert rows[0]["policy"] == "STFM"


class TestPolicySweep:
    def test_gmean_row_appended(self, runner):
        workloads = [["mcf", "GemsFDTD"], ["libquantum", "omnetpp"]]
        rows, text = policy_sweep(runner, workloads, policies=["fr-fcfs", "stfm"])
        assert rows[-1]["workload"] == "GMEAN"
        assert len(rows) == 3
        assert "GMEAN-unfairness" in text

    def test_unfairness_keys_per_policy(self, runner):
        rows, _ = policy_sweep(
            runner, [["mcf", "GemsFDTD"]], policies=["fr-fcfs", "stfm"]
        )
        assert "unfairness:fr-fcfs" in rows[0]
        assert "unfairness:stfm" in rows[0]

    def test_config_kwargs_reach_the_system(self):
        banked = make_runner(2, TINY, num_banks=4)
        assert banked.config.num_banks == 4
        assert banked.config.mapper().num_banks == 4


class TestMakeRunner:
    def test_budget_and_seed_from_scale(self):
        runner = make_runner(2, Scale(budget=1234, samples=1, seed=9))
        assert runner.instruction_budget == 1234
        assert runner.seed == 9
