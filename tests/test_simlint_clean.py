"""Tier-1 gate: the shipped tree must be ``simlint``-clean.

This makes the determinism invariants part of CI — a PR that introduces
a wall-clock read, an unseeded RNG, bare-set iteration in an arbitration
path, ``id()``-keyed decision state, a float-equality gate, or a mutable
default argument fails here with the rule's fix-it message.
"""

from pathlib import Path

from repro.analysis.simlint import load_config, run_simlint

REPO_ROOT = Path(__file__).resolve().parents[1]
SOURCE_TREE = REPO_ROOT / "src" / "repro"


def test_source_tree_exists():
    assert SOURCE_TREE.is_dir()


def test_simlint_clean_over_source_tree():
    config = load_config(str(REPO_ROOT / "setup.cfg"))
    findings = run_simlint([str(SOURCE_TREE)], config)
    report = "\n".join(finding.format() for finding in findings)
    assert not findings, f"simlint findings in the shipped tree:\n{report}"
