"""Tests for the simulation service (repro.service).

Unit layers (spec validation, digests, metrics rendering, job-state
persistence/recovery, the admission queue) are tested directly; the
HTTP layers run against a real server on a loopback socket, driven by
the blocking :class:`ServiceClient` from the test thread while the
asyncio loop runs in a background thread.

The acceptance criteria live here too: submitting ``fig3`` through the
HTTP API is bit-identical to a direct engine run, and resubmitting the
same spec performs zero new simulations (visible in ``/metrics``).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading

import pytest

from repro.experiments import run_experiment
from repro.experiments.io import result_to_dict
from repro.service.api import SpecError, parse_spec, spec_digest
from repro.service.client import (
    BackpressureError,
    ServiceClient,
    ServiceError,
    parse_metrics,
)
from repro.service.metrics import MetricsRegistry
from repro.service.queue import AdmissionQueue, QueueFullError
from repro.service.server import ServiceConfig, SimulationService
from repro.service.state import DONE, QUEUED, RUNNING, Job, JobStore


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep direct engine runs from touching the user's real store."""
    monkeypatch.setenv("STFM_SIM_CACHE_DIR", str(tmp_path / "default-store"))


FAST_WORKLOAD = {
    "kind": "workload",
    "benchmarks": ["mcf", "hmmer"],
    "policy": "fr-fcfs",
    "budget": 1_500,
}


# -- spec validation ---------------------------------------------------------


class TestSpecValidation:
    def test_experiment_spec_roundtrip(self):
        spec = parse_spec({"kind": "experiment", "experiment": "FIG3",
                           "scale": "tiny"})
        assert spec.experiment == "fig3"
        assert spec.normalized()["scale"] == "tiny"

    def test_workload_defaults(self):
        spec = parse_spec({"kind": "workload", "benchmarks": ["mcf", "hmmer"]})
        normalized = spec.normalized()
        assert normalized["policy"] == "fr-fcfs"
        assert normalized["num_cores"] == 2
        assert normalized["seed"] == 0

    @pytest.mark.parametrize(
        "raw, match",
        [
            ("not a dict", "JSON object"),
            ({}, "'kind'"),
            ({"kind": "nope"}, "'kind'"),
            ({"kind": "experiment", "experiment": "fig99"}, "'experiment'"),
            (
                {"kind": "experiment", "experiment": "fig3", "scale": "huge"},
                "'scale'",
            ),
            (
                {"kind": "experiment", "experiment": "fig3", "extra": 1},
                "unknown spec key",
            ),
            ({"kind": "workload", "benchmarks": []}, "non-empty"),
            ({"kind": "workload", "benchmarks": ["not-a-bench"]},
             "unknown benchmark"),
            (
                {"kind": "workload", "benchmarks": ["mcf"], "policy": "bogus"},
                "'policy'",
            ),
            (
                {"kind": "workload", "benchmarks": ["mcf"], "budget": -1},
                "'budget'",
            ),
            (
                {"kind": "workload", "benchmarks": ["mcf"], "budget": True},
                "'budget'",
            ),
            (
                {"kind": "workload", "benchmarks": ["mcf", "hmmer"],
                 "num_cores": 1},
                "'num_cores'",
            ),
        ],
    )
    def test_rejects(self, raw, match):
        with pytest.raises(SpecError, match=match):
            parse_spec(raw)

    def test_digest_stable_across_key_order(self):
        a = parse_spec({"kind": "workload", "benchmarks": ["mcf"],
                        "policy": "stfm", "budget": 2000})
        b = parse_spec({"budget": 2000, "policy": "stfm",
                        "benchmarks": ["mcf"], "kind": "workload"})
        assert spec_digest(a) == spec_digest(b)

    def test_digest_distinguishes_inputs(self):
        base = parse_spec({"kind": "workload", "benchmarks": ["mcf"]})
        for variant in (
            {"kind": "workload", "benchmarks": ["mcf"], "seed": 1},
            {"kind": "workload", "benchmarks": ["mcf"], "policy": "stfm"},
            {"kind": "workload", "benchmarks": ["mcf"], "budget": 4000},
            {"kind": "workload", "benchmarks": ["hmmer"]},
        ):
            assert spec_digest(parse_spec(variant)) != spec_digest(base)


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_render_counter_gauge_summary(self):
        registry = MetricsRegistry()
        jobs = registry.counter("jobs_total", "Jobs by event.")
        registry.gauge("depth", "Queue depth.", read=lambda: 3)
        wall = registry.summary("wall_seconds", "Wall time.")
        jobs.inc(event="done")
        jobs.inc(event="done")
        jobs.inc(event="failed")
        wall.observe(0.5)
        wall.observe(1.5)
        text = registry.render()
        assert '# TYPE jobs_total counter' in text
        assert 'jobs_total{event="done"} 2' in text
        assert 'jobs_total{event="failed"} 1' in text
        assert "depth 3" in text
        assert "wall_seconds_sum 2" in text
        assert "wall_seconds_count 2" in text
        assert parse_metrics(text)['jobs_total{event="done"}'] == 2.0

    def test_telemetry_counter_samples_share_the_shape(self):
        from repro.sim.telemetry import Telemetry, TelemetrySample

        telemetry = Telemetry(
            samples=[
                TelemetrySample(
                    cycle=100, instructions=[5, 7], stall_cycles=[1, 2],
                    estimated_slowdowns=None, queued_reads=0,
                    fairness_mode=None,
                )
            ]
        )
        samples = telemetry.counter_samples()
        assert ("stfm_sim_instructions_total", {"thread": "1"}, 7.0) in samples
        assert ("stfm_sim_cycles_total", {}, 100.0) in samples
        assert Telemetry().counter_samples() == []


# -- job state persistence ---------------------------------------------------


class TestJobStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job(id="abc-0001", spec={"kind": "workload"}, digest="abc",
                  status=DONE, seq=1, result={"x": 1}, wall_time=0.5)
        store.save(job)
        (loaded,) = store.load_all()
        assert loaded.to_dict() == job.to_dict()

    def test_recover_requeues_interrupted_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(Job(id="a-1", spec={}, digest="a", status=RUNNING, seq=1))
        store.save(Job(id="b-2", spec={}, digest="b", status=DONE, seq=2))
        store.save(Job(id="c-3", spec={}, digest="c", status=QUEUED, seq=3))
        jobs, requeue = JobStore(tmp_path).recover()
        assert {j.id for j in jobs} == {"a-1", "b-2", "c-3"}
        assert {j.id for j in requeue} == {"a-1", "c-3"}
        assert all(j.status == QUEUED and j.resumed for j in requeue)
        # The requeued state is persisted, so a second crash recovers too.
        statuses = {j.id: j.status for j in JobStore(tmp_path).load_all()}
        assert statuses == {"a-1": QUEUED, "b-2": DONE, "c-3": QUEUED}

    def test_corrupt_entries_skipped(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(Job(id="ok-1", spec={}, digest="ok", seq=1))
        (tmp_path / "bad.json").write_text("{not json")
        assert [j.id for j in store.load_all()] == ["ok-1"]


# -- admission queue ---------------------------------------------------------


class TestAdmissionQueue:
    def test_backpressure(self):
        async def scenario():
            queue = AdmissionQueue(limit=2)
            queue.submit("a")
            queue.submit("b")
            with pytest.raises(QueueFullError) as exc:
                queue.submit("c")
            assert exc.value.retry_after == 1  # no completions observed yet
            queue.observe(10.0)
            queue.observe(10.0)
            with pytest.raises(QueueFullError) as exc:
                queue.submit("c", inflight=1)
            # mean 10s x (depth 2 + inflight 1) = 30s
            assert exc.value.retry_after == 30

        asyncio.run(scenario())

    def test_retry_after_clamped(self):
        async def scenario():
            queue = AdmissionQueue(limit=1)
            queue.observe(1e6)
            queue.submit("a")
            with pytest.raises(QueueFullError) as exc:
                queue.submit("b")
            assert exc.value.retry_after == 120

        asyncio.run(scenario())


# -- HTTP integration --------------------------------------------------------


@contextlib.contextmanager
def running_service(tmp_path, **overrides):
    """A live service on a loopback port, torn down with a full drain."""
    settings = dict(
        host="127.0.0.1",
        port=0,
        workers=1,
        queue_limit=8,
        cache_dir=str(tmp_path / "store"),
        state_dir=str(tmp_path / "state"),
    )
    settings.update(overrides)
    service = SimulationService(ServiceConfig(**settings))
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(service.start(), loop).result(30)
        yield service, ServiceClient(f"http://127.0.0.1:{service.port}")
    finally:
        asyncio.run_coroutine_threadsafe(
            service.drain_and_stop(), loop
        ).result(120)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


class TestServiceHttp:
    def test_fig3_end_to_end_bit_identical_and_warm_cache(self, tmp_path):
        """The PR's acceptance criterion."""
        spec = {"kind": "experiment", "experiment": "fig3", "scale": "tiny"}
        direct = result_to_dict(run_experiment("fig3", scale="tiny"))
        with running_service(tmp_path) as (service, client):
            first = client.wait(client.submit(spec)["id"], timeout=300)
            assert first["status"] == "done"
            # Bit-identical to the direct engine run (floats round-trip
            # exactly through JSON).
            assert first["result"]["rows"] == direct["rows"]

            before = parse_metrics(client.metrics())
            second_view = client.submit(spec)
            assert second_view["deduplicated"] is False  # first is terminal
            second = client.wait(second_view["id"], timeout=300)
            assert second["status"] == "done"
            assert second["result"]["rows"] == direct["rows"]
            after = parse_metrics(client.metrics())
            # Zero new simulations: every sub-job came from the store.
            assert (
                after["stfm_engine_jobs_simulated_total"]
                == before["stfm_engine_jobs_simulated_total"]
            )
            assert after["stfm_store_hits_total"] > before["stfm_store_hits_total"]

    def test_metrics_expose_required_series(self, tmp_path):
        with running_service(tmp_path) as (service, client):
            text = client.metrics()
            for name in (
                "stfm_service_queue_depth",
                "stfm_service_inflight_jobs",
                "stfm_store_hits_total",
                "stfm_store_misses_total",
            ):
                assert f"# TYPE {name}" in text
            values = parse_metrics(text)
            assert values["stfm_service_queue_depth"] == 0.0
            assert values["stfm_service_inflight_jobs"] == 0.0

    def test_full_queue_returns_429_with_retry_after(self, tmp_path):
        # workers=0: nothing drains the queue, so limit=1 fills at once.
        with running_service(tmp_path, workers=0, queue_limit=1) as (
            service, client,
        ):
            client.submit(FAST_WORKLOAD)
            other = dict(FAST_WORKLOAD, policy="stfm")
            status, headers, body = client.request(
                "POST", "/v1/jobs", body=other
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert "queue" in body["error"]
            with pytest.raises(BackpressureError) as exc:
                client.submit(other)
            assert exc.value.retry_after >= 1

    def test_identical_inflight_specs_coalesce(self, tmp_path):
        with running_service(tmp_path, workers=0, queue_limit=1) as (
            service, client,
        ):
            first = client.submit(FAST_WORKLOAD)
            assert first["deduplicated"] is False
            # Identical spec coalesces instead of consuming the last slot.
            again = client.submit(dict(FAST_WORKLOAD))
            assert again["deduplicated"] is True
            assert again["id"] == first["id"]

    def test_duplicate_submit_race_lands_on_one_job(self, tmp_path):
        """A retried POST /v1/jobs (same Idempotency-Key) must resolve
        to the job the first attempt created — even when the retry
        races the job to a terminal state, and even though the server's
        response to the first attempt was never seen."""
        with running_service(tmp_path, workers=1) as (service, client):
            key = client.idempotency_key(FAST_WORKLOAD)
            first = client.submit(FAST_WORKLOAD, idempotency_key=key)
            assert first["deduplicated"] is False
            # The "response lost" retry: same key, concurrent with the
            # job running — and again after it is terminal.
            retry = client.submit(FAST_WORKLOAD, idempotency_key=key)
            assert retry["id"] == first["id"]
            assert retry["deduplicated"] is True
            client.wait(first["id"], timeout=120)
            late_retry = client.submit(FAST_WORKLOAD, idempotency_key=key)
            assert late_retry["id"] == first["id"]
            assert late_retry["deduplicated"] is True

            metrics = parse_metrics(client.metrics())
            assert (
                metrics['stfm_service_jobs_total{event="submitted"}'] == 1
            )
            assert (
                metrics['stfm_service_jobs_total{event="idempotent_replay"}']
                == 2
            )
            # A *fresh* submission attempt (new nonce) after the job is
            # terminal is a new job — deliberate resubmission still works.
            fresh = client.submit(FAST_WORKLOAD)
            assert fresh["deduplicated"] is False
            assert fresh["id"] != first["id"]

    def test_idempotency_key_survives_restart(self, tmp_path):
        """Keys are persisted with the job: a coordinator restart must
        not turn a retried POST into a duplicate job."""
        key = None
        with running_service(tmp_path, workers=1) as (service, client):
            key = client.idempotency_key(FAST_WORKLOAD)
            first = client.submit(FAST_WORKLOAD, idempotency_key=key)
            client.wait(first["id"], timeout=120)
        with running_service(tmp_path, workers=1) as (service, client):
            retry = client.submit(FAST_WORKLOAD, idempotency_key=key)
            assert retry["id"] == first["id"]
            assert retry["deduplicated"] is True

    def test_malformed_specs_return_400(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, client):
            status, _headers, body = client.request(
                "POST", "/v1/jobs", body={"kind": "workload", "benchmarks": []}
            )
            assert status == 400
            assert "non-empty" in body["error"]
            with pytest.raises(ServiceError) as exc:
                client.submit({"kind": "experiment", "experiment": "fig99"})
            assert exc.value.status == 400

    def test_invalid_json_body_returns_400(self, tmp_path):
        import http.client

        with running_service(tmp_path, workers=0) as (service, client):
            conn = http.client.HTTPConnection("127.0.0.1", service.port)
            try:
                conn.request(
                    "POST", "/v1/jobs", body=b"{nope",
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 400
                assert b"JSON" in response.read()
            finally:
                conn.close()

    def test_worker_crash_marks_job_failed_not_hung(self, tmp_path):
        # Validation cannot see policy kwarg *values*, so alpha < 1
        # detonates inside the worker — the job must turn FAILED.
        crash = dict(
            FAST_WORKLOAD, policy="stfm", policy_kwargs={"alpha": 0.5}
        )
        with running_service(tmp_path) as (service, client):
            view = client.submit(crash)
            done = client.wait(view["id"], timeout=60)
            assert done["status"] == "failed"
            assert done["error"]
            # ... and the worker survived to run the next job.
            ok = client.wait(client.submit(FAST_WORKLOAD)["id"], timeout=60)
            assert ok["status"] == "done"

    def test_unknown_ids_and_endpoints_return_404(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, client):
            with pytest.raises(ServiceError) as exc:
                client.job("nope-0000")
            assert exc.value.status == 404
            status, _headers, _body = client.request("GET", "/nope")
            assert status == 404

    def test_results_endpoint_202_until_done(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, client):
            view = client.submit(FAST_WORKLOAD)
            status, _headers, body = client.request(
                "GET", f"/v1/results/{view['id']}"
            )
            assert status == 202
            assert body["status"] == "queued"
            assert "result" not in body

    def test_results_listing_endpoint(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, client):
            assert client.results() == []
            first = client.submit(FAST_WORKLOAD)
            second = client.submit(dict(FAST_WORKLOAD, policy="stfm"))
            listing = client.results()
            # Submission order, ids + digests + status, no payloads.
            assert [entry["id"] for entry in listing] == [
                first["id"],
                second["id"],
            ]
            for entry, view in zip(listing, (first, second)):
                assert set(entry) == {"id", "spec_digest", "status"}
                assert entry["spec_digest"] == view["spec_digest"]
                assert entry["status"] == "queued"
            # The bare path rejects other methods like the rest of /v1.
            status, _headers, _body = client.request("POST", "/v1/results")
            assert status == 405

    def test_draining_health_and_503(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, client):
            assert client.health()["status"] == "ok"
            service.draining = True
            assert client.health()["status"] == "draining"
            status, _headers, body = client.request(
                "POST", "/v1/jobs", body=FAST_WORKLOAD
            )
            assert status == 503
            service.draining = False

    def test_restart_recovers_and_resumes_jobs(self, tmp_path):
        # A dead server left one job mid-run and one queued: a fresh
        # instance on the same state dir re-queues and completes both.
        state = JobStore(tmp_path / "state")
        spec = parse_spec(FAST_WORKLOAD).normalized()
        digest = spec_digest(spec)
        state.save(Job(id=f"{digest[:12]}-0001", spec=spec, digest=digest,
                       status=RUNNING, seq=1))
        done_spec = dict(spec, seed=9)
        done_digest = spec_digest(done_spec)
        state.save(Job(id=f"{done_digest[:12]}-0002", spec=done_spec,
                       digest=done_digest, status=DONE, seq=2,
                       result={"kind": "workload"}))
        with running_service(tmp_path) as (service, client):
            resumed = client.wait(f"{digest[:12]}-0001", timeout=120)
            assert resumed["status"] == "done"
            assert resumed["resumed"] is True
            # Terminal work is re-reported as-is, not re-run.
            kept = client.result(f"{done_digest[:12]}-0002")
            assert kept["status"] == "done"
            assert kept["result"] == {"kind": "workload"}
            # New submissions continue the persisted sequence (no id reuse).
            fresh = client.submit(dict(FAST_WORKLOAD, seed=3))
            assert fresh["id"].endswith("-0003")

    def test_drain_completes_inflight_jobs(self, tmp_path):
        # drain_and_stop (the SIGTERM path minus the signal) must finish
        # already-admitted jobs before the listener goes down.
        settings = dict(
            host="127.0.0.1", port=0, workers=1, queue_limit=8,
            cache_dir=str(tmp_path / "store"),
            state_dir=str(tmp_path / "state"),
        )
        service = SimulationService(ServiceConfig(**settings))
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            asyncio.run_coroutine_threadsafe(service.start(), loop).result(30)
            client = ServiceClient(f"http://127.0.0.1:{service.port}")
            ids = [
                client.submit(dict(FAST_WORKLOAD, seed=seed))["id"]
                for seed in (11, 12, 13)
            ]
            asyncio.run_coroutine_threadsafe(
                service.drain_and_stop(), loop
            ).result(300)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10)
            loop.close()
        persisted = {j.id: j for j in JobStore(tmp_path / "state").load_all()}
        for job_id in ids:
            assert persisted[job_id].status == DONE


# -- SIGTERM drain (the real signal, in a subprocess) ------------------------


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        import os
        import signal as signal_module
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", "--port", "0",
                "--workers", "1", "--queue-limit", "8",
                "--cache-dir", str(tmp_path / "store"),
                "--state-dir", str(tmp_path / "state"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            port = int(line.rstrip().rsplit(":", 1)[1])
            client = ServiceClient(f"http://127.0.0.1:{port}")
            job_id = client.submit(dict(FAST_WORKLOAD, seed=21))["id"]
            proc.send_signal(signal_module.SIGTERM)
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        jobs = {j.id: j for j in JobStore(tmp_path / "state").load_all()}
        assert jobs[job_id].status == DONE
