"""Tests for the DRAM bank state machine."""

import pytest

from repro.dram.bank import Bank, RowBufferOutcome
from repro.dram.commands import CommandKind
from repro.dram.timing import DramTiming


@pytest.fixture
def bank(timing) -> Bank:
    return Bank(0, timing)


class TestClassification:
    def test_closed_bank(self, bank):
        assert bank.classify(5) is RowBufferOutcome.ROW_CLOSED

    def test_hit(self, bank):
        bank.open_row = 5
        assert bank.classify(5) is RowBufferOutcome.ROW_HIT

    def test_conflict(self, bank):
        bank.open_row = 4
        assert bank.classify(5) is RowBufferOutcome.ROW_CONFLICT


class TestNextCommand:
    def test_closed_needs_activate(self, bank):
        assert bank.next_command_for(5) is CommandKind.ACTIVATE

    def test_hit_needs_column(self, bank):
        bank.open_row = 5
        assert bank.next_command_for(5) is CommandKind.READ

    def test_conflict_needs_precharge(self, bank):
        bank.open_row = 4
        assert bank.next_command_for(5) is CommandKind.PRECHARGE


class TestCommandLatency:
    def test_precharge(self, bank, timing):
        assert bank.command_latency(CommandKind.PRECHARGE) == timing.rp

    def test_activate(self, bank, timing):
        assert bank.command_latency(CommandKind.ACTIVATE) == timing.rcd

    def test_column(self, bank, timing):
        expected = timing.cl + timing.burst
        assert bank.command_latency(CommandKind.READ) == expected
        assert bank.command_latency(CommandKind.WRITE) == expected


class TestReadiness:
    def test_busy_bank_not_ready(self, bank):
        bank.busy_until = 100
        assert not bank.is_ready(CommandKind.ACTIVATE, 50)
        assert bank.is_ready(CommandKind.ACTIVATE, 100)

    def test_activate_requires_closed_row(self, bank):
        bank.open_row = 3
        bank.activated_at = -1000
        assert not bank.is_ready(CommandKind.ACTIVATE, 0)

    def test_column_requires_open_row(self, bank):
        assert not bank.is_ready(CommandKind.READ, 0)
        bank.open_row = 3
        assert bank.is_ready(CommandKind.READ, 0)

    def test_precharge_respects_tras(self, bank, timing):
        bank.apply(CommandKind.ACTIVATE, 3, 0)
        # Activate finishes at tRCD but tRAS must elapse before precharge.
        assert not bank.is_ready(CommandKind.PRECHARGE, timing.rcd)
        assert not bank.is_ready(CommandKind.PRECHARGE, timing.ras - 1)
        assert bank.is_ready(CommandKind.PRECHARGE, timing.ras)

    def test_precharge_on_closed_bank_not_tras_limited(self, bank):
        assert bank.is_ready(CommandKind.PRECHARGE, 0)


class TestApply:
    def test_activate_opens_row_and_busies_for_trcd(self, bank, timing):
        bank.apply(CommandKind.ACTIVATE, 7, 1000)
        assert bank.open_row == 7
        assert bank.activated_at == 1000
        assert bank.busy_until == 1000 + timing.rcd

    def test_precharge_closes_row_and_busies_for_trp(self, bank, timing):
        bank.open_row = 7
        bank.apply(CommandKind.PRECHARGE, 7, 500)
        assert bank.open_row is None
        assert bank.busy_until == 500 + timing.rp

    def test_column_pipelines_at_burst_rate(self, bank, timing):
        bank.open_row = 7
        bank.apply(CommandKind.READ, 7, 200)
        assert bank.open_row == 7  # the row stays open (open-page policy)
        assert bank.busy_until == 200 + timing.burst

    def test_full_row_cycle(self, bank, timing):
        """Conflict sequence: precharge -> activate -> read."""
        bank.apply(CommandKind.ACTIVATE, 1, 0)
        now = timing.ras
        bank.apply(CommandKind.PRECHARGE, 2, now)
        assert bank.open_row is None
        now = bank.busy_until
        bank.apply(CommandKind.ACTIVATE, 2, now)
        assert bank.open_row == 2
        now = bank.busy_until
        assert bank.is_ready(CommandKind.READ, now)
