"""Store-backend conformance suite (repro.engine.backends).

Every backend — local FS, SQLite, and the coordinator's HTTP store
proxy — must behave identically under the :class:`CacheStore` policy
layer: round-trip integrity, checksum corruption quarantined on read,
safe concurrent writers, best-effort puts that never raise, and a
uniform ``stats()``/``prune()`` schema (which is what lets
``stfm-sim cache`` report the same shape everywhere).

The HTTP backend runs against a *real* :class:`ClusterCoordinator`
on a loopback port, proxying onto an FS store — the same wiring a
cluster runner uses.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time

import pytest

from repro import faults
from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.engine.backends import (
    FsBackend,
    HttpStoreBackend,
    SqliteBackend,
    StoreBackend,
    create_backend,
)
from repro.engine.store import CacheStore, payload_checksum

BACKENDS = ("fs", "sqlite", "http")


@contextlib.contextmanager
def _coordinator(tmp_path):
    """A live coordinator (FS-backed store) on a loopback port."""
    service = ClusterCoordinator(CoordinatorConfig(
        host="127.0.0.1",
        port=0,
        cache_dir=str(tmp_path / "proxy-root"),
        state_dir=str(tmp_path / "coordinator-state"),
        lease_ttl=30.0,
    ))
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(service.start(), loop).result(30)
        yield f"http://127.0.0.1:{service.port}"
    finally:
        asyncio.run_coroutine_threadsafe(
            service.drain_and_stop(), loop
        ).result(60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


@pytest.fixture(params=BACKENDS)
def location(request, tmp_path):
    """A backend location string of each flavor."""
    if request.param == "fs":
        yield str(tmp_path / "store")
    elif request.param == "sqlite":
        yield f"sqlite:{tmp_path / 'store.sqlite'}"
    else:
        with _coordinator(tmp_path) as url:
            yield url


def _payload(tag: str) -> dict:
    return {"rows": [[tag, 1.5, 2.25]], "meta": {"tag": tag}}


class TestCreateBackend:
    def test_dispatch_by_location(self, tmp_path):
        assert isinstance(create_backend(str(tmp_path / "d")), FsBackend)
        assert isinstance(
            create_backend(f"sqlite:{tmp_path / 'x.db'}"), SqliteBackend
        )
        assert isinstance(
            create_backend(str(tmp_path / "x.sqlite")), SqliteBackend
        )
        from repro.engine.backends import HttpStoreBackend

        assert isinstance(
            create_backend("http://127.0.0.1:1"), HttpStoreBackend
        )

    def test_backend_instance_passthrough(self, tmp_path):
        backend = FsBackend(tmp_path / "d")
        assert create_backend(backend) is backend
        store = CacheStore(backend)
        assert store.backend is backend


class TestConformance:
    def test_round_trip_and_counters(self, location):
        store = CacheStore(location)
        try:
            assert store.get("k" * 64) is None
            assert store.misses == 1
            assert store.put("k" * 64, _payload("a"), "job-a")
            got = store.get("k" * 64)
            assert got == _payload("a")
            assert store.hits == 1
            assert "k" * 64 in store
        finally:
            store.close()
        # A fresh store over the same location sees the entry (durable).
        fresh = CacheStore(location)
        try:
            assert fresh.get("k" * 64) == _payload("a")
        finally:
            fresh.close()

    def test_checksum_corruption_is_quarantined(self, location):
        store = CacheStore(location)
        try:
            key = "c" * 64
            entry = {
                "kind": "job",
                "describe": "tampered",
                "sha256": "0" * 64,  # wrong on purpose
                "payload": _payload("tampered"),
            }
            store.backend.write(key, json.dumps(entry).encode())
            assert store.get(key) is None
            assert store.quarantined == 1
            # The entry is gone from the live store, not silently kept.
            assert store.get(key) is None
            assert store.quarantined == 1  # second read is a plain miss
        finally:
            store.close()

    def test_undecodable_blob_is_quarantined(self, location):
        store = CacheStore(location)
        try:
            key = "d" * 64
            store.backend.write(key, b"\x00not json at all")
            assert store.get(key) is None
            assert store.quarantined == 1
        finally:
            store.close()

    def test_concurrent_writers_land_every_entry(self, location):
        store = CacheStore(location)
        try:
            keys = [f"{index:02d}" + "e" * 62 for index in range(8)]
            errors: list[Exception] = []

            def write(key: str) -> None:
                try:
                    for _ in range(5):  # repeated same-key writes race too
                        assert store.put(key, _payload(key[:2]),
                                         f"job-{key[:2]}")
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=write, args=(key,)) for key in keys
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
            assert not errors
            for key in keys:
                assert store.get(key) == _payload(key[:2])
            assert store.stats().entries == len(keys)
        finally:
            store.close()

    def test_put_is_best_effort_on_write_error(self, location, monkeypatch):
        store = CacheStore(location)
        try:
            def explode(key, blob):
                raise OSError(28, "No space left on device")

            monkeypatch.setattr(store.backend, "write", explode)
            assert store.put("f" * 64, _payload("f"), "job-f") is False
            assert store.put_errors == 1  # counted, never raised
        finally:
            store.close()

    def test_stats_and_prune_schema_is_uniform(self, location):
        store = CacheStore(location)
        try:
            for index in range(3):
                store.put(f"{index}" + "a" * 63, _payload(str(index)),
                          f"job-{index}")
            stats = store.stats()
            assert stats.entries == 3
            assert stats.total_bytes > 0
            assert len(store) == 3
            removed = store.prune()
            assert removed.entries == 3
            assert removed.total_bytes > 0
            assert store.stats().entries == 0
            assert store.get("0" + "a" * 63) is None
        finally:
            store.close()

    def test_checksum_helper_matches_store(self, location):
        payload = _payload("x")
        store = CacheStore(location)
        try:
            store.put("b" * 64, payload, "job-b")
            raw = store.backend.read("b" * 64)
            entry = json.loads(raw.decode())
            assert entry["sha256"] == payload_checksum(payload)
        finally:
            store.close()


class TestCacheCliSchema:
    def test_cache_report_identical_schema_across_backends(
        self, location, capsys
    ):
        """`stfm-sim cache --json` must emit the same keys everywhere."""
        from repro.cli import main

        store = CacheStore(location)
        try:
            store.put("9" * 64, _payload("9"), "job-9")
        finally:
            store.close()
        assert main(["cache", "--store", location, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"location", "backend", "entries",
                               "total_bytes"}
        assert report["entries"] == 1
        assert report["backend"] in ("fs", "sqlite", "http")

        assert main(["cache", "--store", location, "--json",
                     "--prune"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"location", "backend", "entries",
                               "total_bytes", "pruned_entries",
                               "pruned_bytes"}
        assert report["pruned_entries"] == 1


class TestNetworkFaultConformance:
    """The conformance contract must survive injected network faults.

    On every backend, a wire-level fault may only degrade an operation
    — a torn read quarantines like on-disk corruption, an unreachable
    proxy turns reads into clean cold-cache misses and buffers writes,
    a reset-after-send settles through a conditional PUT — it must
    never raise out of the store, and never duplicate an upload.  The
    FS and SQLite backends have no wire, so the same schedule is a
    no-op for them: the assertions split on backend flavor.
    """

    def _seed(self, location, key, tag):
        """One fault-free write so the entry really is in the store."""
        store = CacheStore(location)
        try:
            assert store.put(key, _payload(tag), f"job-{tag}")
        finally:
            store.close()

    def test_truncated_get_quarantines_like_corruption(
        self, location, monkeypatch
    ):
        key = "a" * 64
        self._seed(location, key, "t")
        monkeypatch.setenv(faults.FAULTS_ENV, "truncate=1.0")
        fresh = CacheStore(location)
        try:
            got = fresh.get(key)
            if location.startswith("http"):
                # Torn body -> checksum mismatch -> quarantined miss.
                assert got is None
                assert fresh.quarantined == 1
                # The entry was quarantined remotely: a plain miss now.
                assert fresh.get(key) is None
                assert fresh.quarantined == 1
            else:
                assert got == _payload("t")  # no wire, no truncation
        finally:
            fresh.close()

    def test_reset_mid_put_settles_without_duplicates(
        self, location, monkeypatch
    ):
        monkeypatch.setenv(faults.FAULTS_ENV, "reset=1.0")
        key = "b" * 64
        store = CacheStore(location)
        try:
            # The doomed send reaches the proxy, the response is lost,
            # and the conditional retry settles with a 412 — the put
            # still reports success on every backend.
            assert store.put(key, _payload("r"), "job-r")
        finally:
            store.close()
        monkeypatch.delenv(faults.FAULTS_ENV)
        fresh = CacheStore(location)
        try:
            assert fresh.get(key) == _payload("r")
            assert fresh.stats().entries == 1
        finally:
            fresh.close()
        if location.startswith("http"):
            # Re-uploading an existing blob is a conditional-put skip,
            # never a duplicate upload.
            probe = HttpStoreBackend(location)
            blob = probe.read(key)
            assert blob is not None
            probe.write(key, blob)
            assert probe.conditional_skips == 1

    def test_latency_past_timeout_degrades_to_cold_cache(
        self, location, monkeypatch
    ):
        key = "c" * 64
        buffered = "d" * 64
        self._seed(location, key, "l")
        monkeypatch.setenv(faults.FAULTS_ENV, "latency=1.0")
        fresh = CacheStore(location)
        try:
            got = fresh.get(key)
            if not location.startswith("http"):
                assert got == _payload("l")  # no wire, no latency
                return
            # Partitioned: the local cache is cold, so the read is a
            # clean miss (the caller just re-simulates) — no exception.
            assert got is None
            assert fresh.misses == 1
            assert fresh.backend.degraded is True
            # Writes buffer instead of failing...
            assert fresh.put(buffered, _payload("d"), "job-d")
            # ...and stay readable through the degraded local cache.
            assert fresh.backend.read(buffered) is not None
            # Heal the network: the half-open probe recovers the wire
            # and flushes the buffered write (conditionally).
            monkeypatch.delenv(faults.FAULTS_ENV)
            time.sleep(0.3)  # past the probe cooldown
            assert fresh.backend.read(key) is not None
            assert fresh.backend.degraded is False
            assert fresh.backend.flushed >= 1
        finally:
            fresh.close()
        check = CacheStore(location)
        try:
            assert check.get(buffered) == _payload("d")
        finally:
            check.close()


class TestBackendContract:
    def test_every_backend_honors_the_abc(self, location):
        backend = create_backend(location)
        assert isinstance(backend, StoreBackend)
        assert backend.read("absent" + "0" * 58) is None
        backend.quarantine("absent" + "0" * 58)  # best-effort, no raise
        assert backend.contains("absent" + "0" * 58) is False
        assert backend.count() == 0
        backend.close()
