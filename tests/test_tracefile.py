"""Tests for trace (de)serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.trace import Trace, TraceRecord
from repro.cpu.tracefile import load_trace, save_trace


def sample_trace(loop=True) -> Trace:
    return Trace(
        [
            TraceRecord(12, False, 0x12340, False),
            TraceRecord(0, True, 0x56780, False),
            TraceRecord(3, False, 0x12380, True),
        ],
        loop=loop,
    )


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "trace.txt"
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.records == original.records
        assert loaded.loop == original.loop

    def test_loop_flag_preserved(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(sample_trace(loop=False), path)
        assert load_trace(path).loop is False

    @given(
        records=st.lists(
            st.tuples(
                st.integers(0, 10_000),
                st.booleans(),
                st.integers(0, 2**40),
                st.booleans(),
            ),
            max_size=50,
        ),
        loop=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, tmp_path_factory, records, loop):
        path = tmp_path_factory.mktemp("traces") / "t.txt"
        original = Trace([TraceRecord(*r) for r in records], loop=loop)
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.records == original.records
        assert loaded.loop == original.loop


class TestGzip:
    def test_gz_round_trip(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.records == original.records
        assert loaded.loop == original.loop

    def test_gz_file_is_actually_compressed(self, tmp_path):
        import gzip

        path = tmp_path / "trace.txt.gz"
        save_trace(sample_trace(), path)
        # Real gzip container, not plain text with a .gz name.
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert handle.readline().startswith("# repro-trace v1")
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_gz_and_plain_produce_identical_content(self, tmp_path):
        import gzip

        plain = tmp_path / "trace.txt"
        compressed = tmp_path / "trace.txt.gz"
        save_trace(sample_trace(), plain)
        save_trace(sample_trace(), compressed)
        with gzip.open(compressed, "rt", encoding="utf-8") as handle:
            assert handle.read() == plain.read_text()


class TestErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 R 0x0 0\n")
        with pytest.raises(ValueError, match="repro-trace"):
            load_trace(path)

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# repro-trace v1 loop=1\n1 R 0x0\n")
        with pytest.raises(ValueError, match="4 fields"):
            load_trace(path)

    def test_bad_kind(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# repro-trace v1 loop=1\n1 X 0x0 0\n")
        with pytest.raises(ValueError, match="kind"):
            load_trace(path)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text(
            "# repro-trace v1 loop=0\n\n# a comment\n5 R 0x40 0\n"
        )
        trace = load_trace(path)
        assert len(trace) == 1
