"""Tests for the synthetic trace generator, including statistical
calibration against the benchmark specs (the core of substitution 1 in
DESIGN.md)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import AddressMapper
from repro.workloads.spec2006 import SPEC2006, BenchmarkSpec
from repro.workloads.synthetic import SyntheticTraceGenerator, generate_trace


@pytest.fixture(scope="module")
def mapper():
    return AddressMapper()


class TestDeterminism:
    def test_same_seed_same_trace(self, mapper):
        spec = SPEC2006["mcf"]
        a = generate_trace(spec, mapper, 10_000, seed=1)
        b = generate_trace(spec, mapper, 10_000, seed=1)
        assert a.records == b.records

    def test_different_seed_different_trace(self, mapper):
        spec = SPEC2006["mcf"]
        a = generate_trace(spec, mapper, 10_000, seed=1)
        b = generate_trace(spec, mapper, 10_000, seed=2)
        assert a.records != b.records

    def test_different_partitions_differ(self, mapper):
        spec = SPEC2006["mcf"]
        a = generate_trace(spec, mapper, 10_000, partition=0, num_partitions=4)
        b = generate_trace(spec, mapper, 10_000, partition=1, num_partitions=4)
        assert a.records != b.records


class TestPartitionIsolation:
    @pytest.mark.parametrize("name", ["mcf", "libquantum", "dealII"])
    def test_partitions_use_disjoint_rows(self, mapper, name):
        spec = SPEC2006[name]
        rows_seen = []
        for partition in range(2):
            trace = generate_trace(
                spec, mapper, 50_000, partition=partition, num_partitions=2
            )
            rows_seen.append(
                {mapper.decode(r.address).row for r in trace}
            )
        assert not rows_seen[0] & rows_seen[1]

    def test_partition_validation(self, mapper):
        with pytest.raises(ValueError):
            generate_trace(SPEC2006["mcf"], mapper, 1000, partition=2,
                           num_partitions=2)
        with pytest.raises(ValueError):
            generate_trace(SPEC2006["mcf"], mapper, 0)


class TestStatisticalCalibration:
    @pytest.mark.parametrize(
        "name", ["mcf", "libquantum", "GemsFDTD", "omnetpp", "h264ref"]
    )
    def test_mpki_matches_spec(self, mapper, name):
        spec = SPEC2006[name]
        instructions = 200_000
        trace = generate_trace(spec, mapper, instructions, seed=5)
        read_mpki = 1000.0 * trace.read_count / trace.instructions_per_pass
        assert read_mpki == pytest.approx(spec.mpki, rel=0.25)

    @pytest.mark.parametrize("name", ["libquantum", "mcf", "GemsFDTD", "dealII"])
    def test_row_locality_matches_spec(self, mapper, name):
        """Consecutive same-row accesses should appear at ~rb_hit_rate."""
        spec = SPEC2006[name]
        trace = generate_trace(spec, mapper, 500_000, seed=5)
        reads = [r for r in trace if not r.is_write]
        same_row = 0
        previous = None
        for record in reads:
            decoded = mapper.decode(record.address)
            key = (decoded.channel, decoded.bank, decoded.row)
            if previous is not None and key == previous:
                same_row += 1
            previous = key
        rate = same_row / max(1, len(reads) - 1)
        assert rate == pytest.approx(spec.rb_hit_rate, abs=0.08)

    def test_bank_focus_skews_accesses(self, mapper):
        spec = SPEC2006["dealII"]  # bank_focus = 2
        trace = generate_trace(spec, mapper, 2_000_000, seed=5)
        counts = {}
        for record in trace:
            if record.is_write:
                continue
            bank = mapper.decode(record.address).bank
            counts[bank] = counts.get(bank, 0) + 1
        top_two = sum(sorted(counts.values(), reverse=True)[:2])
        assert top_two / sum(counts.values()) > 0.7

    def test_uniform_benchmark_spreads_banks(self, mapper):
        spec = SPEC2006["GemsFDTD"]  # no bank focus
        trace = generate_trace(spec, mapper, 100_000, seed=5)
        banks = {mapper.decode(r.address).bank for r in trace if not r.is_write}
        assert len(banks) == mapper.num_banks

    def test_write_fraction(self, mapper):
        spec = SPEC2006["mcf"]
        trace = generate_trace(spec, mapper, 100_000, seed=5)
        writes = trace.memory_operations - trace.read_count
        assert writes / trace.read_count == pytest.approx(
            spec.write_fraction, abs=0.05
        )

    def test_dependence_fraction(self, mapper):
        spec = SPEC2006["omnetpp"]
        trace = generate_trace(spec, mapper, 100_000, seed=5)
        reads = [r for r in trace if not r.is_write]
        dependent = sum(1 for r in reads if r.dependent)
        assert dependent / len(reads) == pytest.approx(spec.dependence, abs=0.05)

    def test_burstiness_concentrates_gaps(self, mapper):
        even = BenchmarkSpec("even", "SYN", 1, 20.0, 0.5, 3, burstiness=0.0)
        bursty = BenchmarkSpec("bursty", "SYN", 1, 20.0, 0.5, 3, burstiness=0.9)
        generator = SyntheticTraceGenerator(mapper, seed=5)

        def gap_variance(trace):
            gaps = [r.compute for r in trace if not r.is_write]
            mean = sum(gaps) / len(gaps)
            return sum((g - mean) ** 2 for g in gaps) / len(gaps)

        even_trace = generator.trace_for(even, 100_000)
        bursty_trace = generator.trace_for(bursty, 100_000)
        assert gap_variance(bursty_trace) > 2 * gap_variance(even_trace)


class TestGeneratorProperties:
    @given(
        mpki=st.floats(min_value=0.5, max_value=100.0),
        rb=st.floats(min_value=0.0, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_spec_generates_valid_traces(self, mpki, rb, seed):
        spec = BenchmarkSpec("prop", "SYN", 1.0, mpki, rb, 0)
        mapper = AddressMapper()
        trace = generate_trace(spec, mapper, 20_000, seed=seed)
        assert trace.memory_operations >= 4
        for record in trace:
            assert record.compute >= 0
            decoded = mapper.decode(record.address)
            assert 0 <= decoded.bank < mapper.num_banks

    @given(num_partitions=st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=10, deadline=None)
    def test_every_partition_valid(self, num_partitions):
        spec = SPEC2006["lbm"]
        mapper = AddressMapper()
        for partition in range(num_partitions):
            trace = generate_trace(
                spec, mapper, 5_000, partition=partition,
                num_partitions=num_partitions,
            )
            assert trace.memory_operations > 0
