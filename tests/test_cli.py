"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.experiment == "fig6"
        assert args.scale == "small"

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig6", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table5" in out

    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "libquantum" in out and "101.06" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "fig1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Memory slowdown under FR-FCFS" in out
        assert "libquantum" in out

    def test_workload(self, capsys):
        code = main(
            [
                "workload",
                "mcf",
                "hmmer",
                "--policy",
                "fr-fcfs",
                "--policy",
                "stfm",
                "--budget",
                "3000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FR-FCFS" in out and "STFM" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])
