"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI runs from touching the user's real result store."""
    monkeypatch.setenv("STFM_SIM_CACHE_DIR", str(tmp_path / "store"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.experiment == "fig6"
        assert args.scale == "small"

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig6", "--scale", "huge"])

    def test_engine_flags(self):
        args = build_parser().parse_args(
            [
                "run", "fig6", "--jobs", "4", "--seed", "3",
                "--cache-dir", "/tmp/x",
            ]
        )
        assert args.jobs == 4
        assert args.seed == 3
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache is False

    def test_engine_flag_defaults(self):
        args = build_parser().parse_args(["run", "fig6", "--no-cache"])
        assert args.jobs == 1
        assert args.seed is None
        assert args.cache_dir is None
        assert args.no_cache is True


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table5" in out

    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "libquantum" in out and "101.06" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "fig1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Memory slowdown under FR-FCFS" in out
        assert "libquantum" in out

    def test_workload(self, capsys):
        code = main(
            [
                "workload",
                "mcf",
                "hmmer",
                "--policy",
                "fr-fcfs",
                "--policy",
                "stfm",
                "--budget",
                "3000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FR-FCFS" in out and "STFM" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])

    def test_run_parallel_then_warm_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = [
            "run", "fig1", "--scale", "tiny", "--jobs", "2",
            "--cache-dir", cache,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "engine:" in cold
        assert "0 simulated" not in cold
        # Second invocation: every job comes from the persistent store.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulated" in warm
        assert "(0 disk, 0 memory)" not in warm

    def test_run_seed_changes_results(self, capsys):
        assert main(["run", "fig1", "--scale", "tiny", "--no-cache"]) == 0
        base = capsys.readouterr().out
        assert (
            main(["run", "fig1", "--scale", "tiny", "--no-cache",
                  "--seed", "5"])
            == 0
        )
        reseeded = capsys.readouterr().out
        assert base != reseeded

    def test_run_exits_nonzero_when_a_job_fails(self, capsys, monkeypatch):
        from types import SimpleNamespace

        import repro.cli as cli_module
        from repro.engine import JobFailedError

        def explode(experiment_id, scale="small"):
            raise JobFailedError(
                SimpleNamespace(describe=lambda: "shared mcf"), "worker crashed"
            )

        monkeypatch.setattr(cli_module, "run_experiment", explode)
        assert main(["run", "fig1", "--scale", "tiny", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "fig1" in err


class TestServiceParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.workers == 2
        assert args.queue_limit == 32
        assert args.engine_jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False
        assert args.state_dir is None

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "fig3"])
        assert args.experiment == "fig3"
        assert args.workload is None
        assert args.server == "http://127.0.0.1:8765"
        assert args.scale == "small"
        assert args.wait is False

    def test_submit_workload_form(self):
        args = build_parser().parse_args(
            ["submit", "--workload", "mcf", "hmmer", "--policy", "stfm",
             "--budget", "3000"]
        )
        assert args.workload == ["mcf", "hmmer"]
        assert args.policy == "stfm"
        assert args.budget == 3000

    def test_status_and_cache_defaults(self):
        args = build_parser().parse_args(["status"])
        assert args.job_id is None
        args = build_parser().parse_args(["cache"])
        assert args.cache_dir is None
        assert args.prune is False


class TestServiceCommands:
    def test_serve_rejects_zero_workers(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "at least one worker" in capsys.readouterr().err

    def test_submit_requires_a_target(self):
        with pytest.raises(SystemExit, match="experiment id or --workload"):
            main(["submit"])

    def test_submit_unreachable_server_exits_1(self, capsys):
        assert main(["submit", "fig3", "--server", "http://127.0.0.1:1"]) == 1
        assert "submit:" in capsys.readouterr().err

    def test_status_unreachable_server_exits_1(self, capsys):
        assert main(["status", "--server", "http://127.0.0.1:1"]) == 1
        assert "status:" in capsys.readouterr().err

    def test_cache_lists_and_prunes(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["run", "fig1", "--scale", "tiny",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache]) == 0
        listing = capsys.readouterr().out
        assert cache in listing
        assert "0 entries" not in listing
        assert main(["cache", "--cache-dir", cache, "--prune"]) == 0
        assert "pruned" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", cache]) == 0
        assert "0 entries, 0 bytes" in capsys.readouterr().out

    def test_cache_honours_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("STFM_SIM_CACHE_DIR", str(tmp_path / "envstore"))
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "envstore" in out and "0 entries" in out
