"""Tests for fairness and throughput metrics (Section 6.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    geometric_mean,
    hmean_speedup,
    memory_slowdown,
    sum_of_ipcs,
    unfairness_index,
    weighted_speedup,
)
from repro.metrics.stats import mean


class TestMemorySlowdown:
    def test_ratio(self):
        assert memory_slowdown(2.0, 1.0) == 2.0

    def test_zero_alone_clamped(self):
        assert memory_slowdown(1.0, 0.0) > 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            memory_slowdown(-1.0, 1.0)


class TestUnfairness:
    def test_perfectly_fair_is_one(self):
        assert unfairness_index([2.0, 2.0, 2.0]) == 1.0

    def test_max_over_min(self):
        assert unfairness_index([1.0, 4.0, 2.0]) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            unfairness_index([])
        with pytest.raises(ValueError):
            unfairness_index([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1))
    def test_always_at_least_one(self, slowdowns):
        assert unfairness_index(slowdowns) >= 1.0

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_scale_invariant(self, slowdowns, factor):
        scaled = [s * factor for s in slowdowns]
        assert unfairness_index(scaled) == pytest.approx(
            unfairness_index(slowdowns)
        )


class TestThroughputMetrics:
    def test_weighted_speedup(self):
        # Two threads at half their alone speed: WS = 1.0.
        assert weighted_speedup([0.5, 1.0], [1.0, 2.0]) == 1.0

    def test_weighted_speedup_max_is_thread_count(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == 2.0

    def test_hmean_speedup(self):
        assert hmean_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)
        # One starving thread dominates the harmonic mean.
        balanced = hmean_speedup([0.5, 1.0], [1.0, 2.0])
        skewed = hmean_speedup([0.1, 1.8], [1.0, 2.0])
        assert balanced > skewed

    def test_sum_of_ipcs(self):
        assert sum_of_ipcs([1.5, 0.5]) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])
        with pytest.raises(ValueError):
            hmean_speedup([], [])
        with pytest.raises(ValueError):
            sum_of_ipcs([])

    @given(
        st.lists(st.floats(min_value=0.01, max_value=3.0), min_size=1, max_size=16)
    )
    def test_hmean_bounded_by_min_and_max_relative_ipc(self, relative):
        alone = [1.0] * len(relative)
        value = hmean_speedup(relative, alone)
        assert min(relative) - 1e-9 <= value <= max(relative) + 1e-9


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1))
    def test_gmean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9
