"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest
from repro.dram.address import AddressMapper
from repro.dram.timing import DramTiming
from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.frfcfs import FrFcfsPolicy
from repro.sim.config import SystemConfig


@pytest.fixture
def timing() -> DramTiming:
    return DramTiming()


@pytest.fixture
def mapper() -> AddressMapper:
    return AddressMapper(num_channels=1, num_banks=8)


@pytest.fixture
def small_config() -> SystemConfig:
    """A 2-core config with a low safety ceiling for unit tests."""
    return SystemConfig(num_cores=2, max_cycles=20_000_000)


class ControllerHarness:
    """Drives a MemoryController directly, without cores.

    Submits requests at given times and ticks the controller until all
    submitted reads complete, recording completion order and times.
    """

    def __init__(
        self,
        policy: SchedulingPolicy | None = None,
        num_threads: int = 2,
        num_channels: int = 1,
        num_banks: int = 8,
        timing: DramTiming | None = None,
        **controller_kwargs,
    ) -> None:
        self.timing = timing or DramTiming()
        self.mapper = AddressMapper(num_channels=num_channels, num_banks=num_banks)
        self.controller = MemoryController(
            timing=self.timing,
            mapper=self.mapper,
            num_threads=num_threads,
            policy=policy or FrFcfsPolicy(),
            **controller_kwargs,
        )
        self.now = 0
        self.pending: list[MemoryRequest] = []

    def address(self, bank: int, row: int, column: int = 0, channel: int = 0) -> int:
        return self.mapper.compose(channel, bank, row, column)

    def submit(
        self,
        thread: int,
        bank: int,
        row: int,
        column: int = 0,
        is_write: bool = False,
        channel: int = 0,
    ) -> MemoryRequest:
        address = self.address(bank, row, column, channel)
        request = self.controller.make_request(thread, address, is_write, self.now)
        assert self.controller.submit(request, self.now), "request buffer full"
        if not is_write:
            self.pending.append(request)
        return request

    def tick(self, cycles: int = 1) -> None:
        """Advance by ``cycles`` DRAM cycles."""
        for _ in range(cycles):
            self.controller.tick(self.now)
            self.now += self.timing.dram_cycle

    def run_until_done(self, limit: int = 100_000) -> list[MemoryRequest]:
        """Tick until all submitted reads are complete; returns them in
        completion order."""
        ticks = 0
        while any(r.completed_at is None for r in self.pending):
            self.tick()
            ticks += 1
            if ticks > limit:
                raise AssertionError("requests did not complete in time")
        return sorted(self.pending, key=lambda r: r.completed_at)


@pytest.fixture
def harness() -> ControllerHarness:
    return ControllerHarness()
