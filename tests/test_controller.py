"""Integration tests for the memory controller (FR-FCFS policy)."""

import pytest

from repro.dram.bank import RowBufferOutcome
from tests.conftest import ControllerHarness


class TestSingleRequestLatency:
    """Uncontended latencies should match Table 2 (to DRAM-cycle quanta)."""

    def test_row_closed_latency(self, harness):
        request = harness.submit(0, bank=0, row=1)
        harness.run_until_done()
        latency = request.completed_at - request.arrival
        # activate + read + burst + overhead, plus up to two scheduling
        # quanta (the controller decides once per DRAM cycle).
        expected = harness.timing.row_closed_latency()
        assert expected <= latency <= expected + 3 * harness.timing.dram_cycle
        assert request.service_outcome() is RowBufferOutcome.ROW_CLOSED

    def test_row_hit_latency(self, harness):
        first = harness.submit(0, bank=0, row=1, column=0)
        harness.run_until_done()
        harness.pending.clear()
        second = harness.submit(0, bank=0, row=1, column=1)
        harness.run_until_done()
        latency = second.completed_at - second.arrival
        expected = harness.timing.row_hit_latency()
        assert expected <= latency <= expected + 3 * harness.timing.dram_cycle
        assert second.service_outcome() is RowBufferOutcome.ROW_HIT
        assert first.completed_at < second.completed_at

    def test_row_conflict_latency(self, harness):
        harness.submit(0, bank=0, row=1)
        harness.run_until_done()
        # Wait out tRAS so the precharge is not delayed by it.
        harness.tick(harness.timing.ras // harness.timing.dram_cycle + 1)
        harness.pending.clear()
        conflict = harness.submit(0, bank=0, row=2)
        harness.run_until_done()
        latency = conflict.completed_at - conflict.arrival
        expected = harness.timing.row_conflict_latency()
        assert expected <= latency <= expected + 3 * harness.timing.dram_cycle
        assert conflict.service_outcome() is RowBufferOutcome.ROW_CONFLICT


class TestBankParallelism:
    def test_requests_to_different_banks_overlap(self):
        harness = ControllerHarness()
        a = harness.submit(0, bank=0, row=1)
        b = harness.submit(0, bank=1, row=1)
        harness.run_until_done()
        serial = 2 * harness.timing.row_closed_latency()
        finish = max(a.completed_at, b.completed_at)
        assert finish - a.arrival < serial  # overlapped, not serialized

    def test_data_bus_serializes_transfers(self):
        harness = ControllerHarness()
        requests = [harness.submit(0, bank=b, row=1) for b in range(4)]
        done = harness.run_until_done()
        times = [r.completed_at for r in done]
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= harness.timing.burst


class TestFrFcfsOrdering:
    def test_row_hit_bypasses_older_conflict(self):
        """Column-first: a younger row hit is serviced before an older
        row-conflict request to the same bank."""
        harness = ControllerHarness()
        harness.submit(0, bank=0, row=1)
        harness.tick(30)  # let row 1 open and the first request finish
        # Queued in the same cycle: the conflict is (marginally) older,
        # yet the row hit is a ready column access and wins.
        older_conflict = harness.submit(1, bank=0, row=2)
        younger_hit = harness.submit(0, bank=0, row=1, column=5)
        harness.run_until_done()
        assert younger_hit.completed_at < older_conflict.completed_at

    def test_oldest_first_among_equals(self):
        harness = ControllerHarness()
        first = harness.submit(0, bank=0, row=1)
        harness.tick(1)
        second = harness.submit(1, bank=0, row=1)
        harness.run_until_done()
        assert first.completed_at < second.completed_at


class TestWriteHandling:
    def test_reads_prioritized_over_writes(self):
        harness = ControllerHarness()
        harness.submit(0, bank=0, row=3, is_write=True)
        read = harness.submit(1, bank=0, row=7)
        harness.run_until_done()
        queues = harness.controller.queues.channels[0]
        # The read completed while the write may still be queued.
        assert read.completed_at is not None

    def test_writes_drain_when_no_reads_pending(self):
        harness = ControllerHarness()
        write = harness.submit(0, bank=0, row=3, is_write=True)
        for _ in range(200):
            harness.tick()
            if write.completed_at is not None:
                break
        assert write.completed_at is not None
        assert harness.controller.thread_stats[0].writes_completed == 1

    def test_write_drain_mode_triggers_at_high_watermark(self):
        harness = ControllerHarness(
            write_drain_high=4, write_drain_low=1, num_banks=8
        )
        # Keep reads flowing so opportunistic drain does not trigger.
        harness.submit(0, bank=1, row=1)
        writes = [
            harness.submit(0, bank=0, row=10 + i, is_write=True) for i in range(4)
        ]
        harness.tick(400)
        completed = sum(1 for w in writes if w.completed_at is not None)
        assert completed >= 3  # drained down to the low watermark


class TestStatistics:
    def test_row_hit_rate_tracked(self):
        harness = ControllerHarness()
        harness.submit(0, bank=0, row=1, column=0)
        harness.run_until_done()
        for column in range(1, 5):
            harness.submit(0, bank=0, row=1, column=column)
        harness.run_until_done()
        stats = harness.controller.thread_stats[0]
        assert stats.reads_completed == 5
        assert stats.row_hits == 4
        assert stats.row_closed == 1
        assert 0.0 < stats.average_read_latency

    def test_bank_access_parallelism_decays(self):
        harness = ControllerHarness()
        harness.submit(0, bank=0, row=1)
        harness.submit(0, bank=1, row=1)
        harness.run_until_done()
        harness.tick(100)
        assert harness.controller.bank_access_parallelism(0) == 0

    def test_has_work(self):
        harness = ControllerHarness()
        assert not harness.controller.has_work()
        harness.submit(0, bank=0, row=1)
        assert harness.controller.has_work()
