"""Tests for the analytical out-of-order core model.

The core is driven with a scripted ``submit`` function so its commit,
stall-accounting, MLP and back-pressure behaviour can be checked without
a memory controller.
"""

from __future__ import annotations

import pytest

from repro.controller.request import MemoryRequest
from repro.cpu.core import Core
from repro.cpu.trace import Trace, TraceRecord
from repro.dram.address import AddressMapper

MAPPER = AddressMapper()


class ScriptedMemory:
    """A submit() stub with a fixed service latency."""

    def __init__(self, latency: int = 100, accept: bool = True):
        self.latency = latency
        self.accept = accept
        self.requests: list[MemoryRequest] = []

    def __call__(self, thread_id, address, is_write, now):
        if not self.accept:
            return None
        request = MemoryRequest(
            thread_id, address, MAPPER.decode(address), is_write, now
        )
        request.completed_at = now + self.latency
        self.requests.append(request)
        return request


def compute_only_trace(instructions: int) -> Trace:
    # A trace with no memory operations is modeled as one giant compute
    # block followed by a single read (traces always end records with a
    # memory op); keep the read cheap.
    return Trace([TraceRecord(instructions, False, 0x1000)], loop=False)


class TestCommitBandwidth:
    def test_three_wide_commit(self):
        memory = ScriptedMemory(latency=0)
        core = Core(0, compute_only_trace(299), memory, instruction_budget=300)
        core.step(0, 100)  # 100 cycles x 3 wide = up to 300 instructions
        # Window-refill boundaries cost a commit slot or two (a partial
        # 3-wide group cannot span blocks), hence the small tolerance.
        assert 296 <= core.committed_instructions <= 300

    def test_budget_snapshot_taken_once(self):
        memory = ScriptedMemory(latency=0)
        core = Core(0, compute_only_trace(29), memory, instruction_budget=30)
        core.step(0, 20)
        snapshot = core.snapshot
        assert snapshot is not None
        core.step(10, 1000)
        assert core.snapshot is snapshot  # not overwritten


class TestStallAccounting:
    def test_memory_stall_counted_while_head_blocked(self):
        """Tshared counts cycles where the oldest instruction is an
        incomplete L2 miss (Section 3.2.1)."""
        memory = ScriptedMemory(latency=400)
        trace = Trace([TraceRecord(0, False, 0x1000)], loop=False)
        core = Core(0, trace, memory, instruction_budget=1)
        core.step(0, 1000)
        # The miss issues at fetch (cycle 0) and completes at 400; the
        # core stalls from cycle 0 to 400.
        assert core.memory_stall_cycles == pytest.approx(400, abs=2)

    def test_compute_hides_no_latency_when_serial(self):
        memory = ScriptedMemory(latency=300)
        trace = Trace(
            [TraceRecord(30, False, 0x1000), TraceRecord(30, False, 0x2000)],
            loop=False,
        )
        core = Core(0, trace, memory, instruction_budget=62)
        for quantum in range(0, 2000, 10):
            core.step(quantum, 10)
            if core.snapshot:
                break
        snapshot = core.snapshot
        assert snapshot is not None
        # Both misses issue at fetch before the compute commits, so most
        # of the 300-cycle latency overlaps the first compute block but
        # the commit of each load still waits.
        assert snapshot.memory_stall_cycles > 0

    def test_mcpi_metric(self):
        memory = ScriptedMemory(latency=200)
        trace = Trace([TraceRecord(0, False, 0x1000)], loop=False)
        core = Core(0, trace, memory, instruction_budget=1)
        core.step(0, 500)
        assert core.snapshot is not None
        assert core.snapshot.mcpi == pytest.approx(
            core.snapshot.memory_stall_cycles / core.snapshot.instructions
        )


class TestMemoryLevelParallelism:
    def _misses_outstanding_at_fetch(self, max_outstanding: int) -> int:
        memory = ScriptedMemory(latency=10_000)  # effectively never completes
        records = [TraceRecord(0, False, 0x1000 * (i + 1)) for i in range(32)]
        core = Core(
            0,
            Trace(records, loop=False),
            memory,
            instruction_budget=32,
            max_outstanding=max_outstanding,
        )
        core.step(0, 50)
        return len(memory.requests)

    def test_window_limits_outstanding_misses(self):
        # 128-entry window, 1-instruction records: all 32 misses fit.
        assert self._misses_outstanding_at_fetch(64) == 32

    def test_mlp_cap_limits_outstanding_misses(self):
        assert self._misses_outstanding_at_fetch(4) == 4
        assert self._misses_outstanding_at_fetch(1) == 1

    def test_dependent_load_waits_for_previous(self):
        memory = ScriptedMemory(latency=100)
        records = [
            TraceRecord(0, False, 0x1000),
            TraceRecord(0, False, 0x2000, dependent=True),
        ]
        core = Core(0, Trace(records, loop=False), memory, instruction_budget=2)
        core.step(0, 50)
        assert len(memory.requests) == 1  # the chase waits
        core.step(50, 100)
        assert len(memory.requests) == 2  # issued after the first returned


class TestBackPressure:
    def test_rejected_submit_retried(self):
        memory = ScriptedMemory(latency=50)
        memory.accept = False
        trace = Trace([TraceRecord(0, False, 0x1000)], loop=False)
        core = Core(0, trace, memory, instruction_budget=1)
        core.step(0, 30)
        assert not memory.requests
        memory.accept = True
        core.step(30, 200)
        assert len(memory.requests) == 1
        assert core.committed_instructions >= 1

    def test_write_buffer_full_blocks_fetch(self):
        memory = ScriptedMemory(latency=50)
        memory.accept = False
        trace = Trace(
            [TraceRecord(0, True, 0x1000), TraceRecord(5, False, 0x2000)],
            loop=False,
        )
        core = Core(0, trace, memory, instruction_budget=7)
        core.step(0, 30)
        assert core.committed_instructions == 0  # stuck behind the write
        memory.accept = True
        core.step(30, 300)
        assert core.snapshot is not None


class TestWrites:
    def test_writes_commit_without_stalling(self):
        memory = ScriptedMemory(latency=10_000)
        records = [TraceRecord(3, True, 0x1000 * (i + 1)) for i in range(5)]
        core = Core(0, Trace(records, loop=False), memory, instruction_budget=20)
        core.step(0, 50)
        assert core.snapshot is not None
        assert core.memory_stall_cycles == 0
        assert core.writes_issued == 5


class TestTraceExhaustion:
    def test_force_snapshot_on_short_trace(self):
        memory = ScriptedMemory(latency=10)
        trace = Trace([TraceRecord(5, False, 0x1000)], loop=False)
        core = Core(0, trace, memory, instruction_budget=1_000_000)
        for quantum in range(0, 500, 10):
            core.step(quantum, 10)
        assert core.finished
        snapshot = core.force_snapshot(500)
        assert snapshot.instructions >= 6
