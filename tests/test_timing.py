"""Tests for DRAM timing parameters and cycle conversion."""

import pytest

from repro.dram.timing import DDR2_800, DramTiming


class TestCycleConversion:
    def test_baseline_cas_latency_is_60_cpu_cycles(self):
        assert DDR2_800.cl == 60  # 15 ns at 4 GHz

    def test_baseline_rcd_and_rp(self):
        assert DDR2_800.rcd == 60
        assert DDR2_800.rp == 60

    def test_baseline_tras(self):
        assert DDR2_800.ras == 180  # 45 ns

    def test_burst_occupancy(self):
        assert DDR2_800.burst == 40  # BL/2 = 10 ns

    def test_dram_cycle_is_ten_cpu_cycles(self):
        assert DDR2_800.dram_cycle == 10

    def test_t_bus_equals_burst(self):
        assert DDR2_800.t_bus == DDR2_800.burst

    def test_slower_cpu_scales_cycles_down(self):
        timing = DramTiming(cpu_freq_ghz=2.0)
        assert timing.cl == 30
        assert timing.dram_cycle == 5

    def test_rounding_to_nearest_cycle(self):
        timing = DramTiming(t_cl_ns=15.1)
        assert timing.cl == 60  # 60.4 rounds down

    def test_zero_dram_cycle_rejected(self):
        with pytest.raises(ValueError):
            DramTiming(dram_clock_ns=0.0)


class TestUncontendedLatencies:
    """Table 2: uncontended row-hit/closed/conflict are 35/50/70 ns."""

    def test_row_hit_latency(self):
        # tCL + burst + overhead = 15 + 10 + 10 = 35 ns = 140 cycles
        assert DDR2_800.row_hit_latency() == 140

    def test_row_closed_latency(self):
        # + tRCD = 50 ns = 200 cycles
        assert DDR2_800.row_closed_latency() == 200

    def test_row_conflict_latency(self):
        # + tRP; the paper rounds to 70 ns, our composition gives 65 ns
        assert DDR2_800.row_conflict_latency() == 260

    def test_latency_ordering(self):
        assert (
            DDR2_800.row_hit_latency()
            < DDR2_800.row_closed_latency()
            < DDR2_800.row_conflict_latency()
        )


class TestImmutability:
    def test_frozen(self):
        with pytest.raises(AttributeError):
            DDR2_800.cl = 1  # type: ignore[misc]

    def test_hashable_for_config_keys(self):
        assert hash(DramTiming()) == hash(DramTiming())
        assert DramTiming() == DramTiming()
        assert DramTiming(t_cl_ns=20.0) != DramTiming()
