"""Tests for channel-level resource constraints (buses)."""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import CommandKind
from repro.dram.timing import DramTiming


@pytest.fixture
def channel(timing) -> Channel:
    return Channel(0, 8, timing)


class TestCommandBus:
    def test_one_command_per_dram_cycle(self, channel):
        bank = channel.banks[0]
        assert channel.command_bus_free(0)
        channel.issue(bank, CommandKind.ACTIVATE, 1, 0)
        assert not channel.command_bus_free(0)
        assert channel.command_bus_free(1)

    def test_issue_counts_by_kind(self, channel):
        bank = channel.banks[0]
        channel.issue(bank, CommandKind.ACTIVATE, 1, 0)
        channel.issue(bank, CommandKind.READ, 1, bank.busy_until)
        assert channel.commands_issued[CommandKind.ACTIVATE] == 1
        assert channel.commands_issued[CommandKind.READ] == 1


class TestDataBus:
    def test_column_reserves_data_bus(self, channel, timing):
        bank = channel.banks[0]
        bank.open_row = 1
        data_end = channel.issue(bank, CommandKind.READ, 1, 100)
        assert data_end == 100 + timing.cl + timing.burst
        assert channel.data_bus_busy_until == data_end

    def test_column_ready_respects_pipelining(self, channel, timing):
        """A second CAS may issue once its data would follow the first."""
        bank = channel.banks[0]
        bank.open_row = 1
        channel.issue(bank, CommandKind.READ, 1, 0)
        # Data occupies [cl, cl+burst); the next CAS at `burst` lands its
        # data exactly at the end of the current burst.
        assert not channel.column_ready(timing.burst - timing.dram_cycle)
        assert channel.column_ready(timing.burst)

    def test_row_commands_ignore_data_bus(self, channel):
        bank0, bank1 = channel.banks[0], channel.banks[1]
        bank0.open_row = 1
        channel.issue(bank0, CommandKind.READ, 1, 0)
        # An activate in another bank is ready while data is in flight.
        assert channel.is_ready(bank1, CommandKind.ACTIVATE, 10)

    def test_utilization(self, channel, timing):
        bank = channel.banks[0]
        bank.open_row = 1
        channel.issue(bank, CommandKind.READ, 1, 0)
        assert channel.utilization(timing.burst * 2) == pytest.approx(0.5)
        assert channel.utilization(0) == 0.0


class TestIsReady:
    def test_combines_bank_and_bus(self, channel, timing):
        bank = channel.banks[2]
        bank.open_row = 9
        assert channel.is_ready(bank, CommandKind.READ, 0)
        channel.issue(bank, CommandKind.READ, 9, 0)
        # Same cycle: command bus taken.
        assert not channel.is_ready(channel.banks[3], CommandKind.ACTIVATE, 0)
        # Next DRAM cycle: command bus free, but data bus blocks columns.
        other = channel.banks[3]
        other.open_row = 4
        other.activated_at = -1000  # tRAS long satisfied
        assert not channel.is_ready(other, CommandKind.READ, timing.dram_cycle)
        # Bank 3 has an open row, so activate is illegal; precharge works.
        assert not channel.is_ready(other, CommandKind.ACTIVATE, timing.dram_cycle)
        assert channel.is_ready(other, CommandKind.PRECHARGE, timing.dram_cycle)
