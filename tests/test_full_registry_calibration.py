"""Calibration of every Table 3/4 benchmark's generated trace.

These tests are pure trace generation (no simulation), so covering all
30 benchmarks stays cheap.  They pin the generator's contract: MPKI and
row-run locality must track the paper-reported statistics for *every*
benchmark, not just the case-study ones.
"""

import pytest

from repro.dram.address import AddressMapper
from repro.workloads.desktop import DESKTOP_BENCHMARKS
from repro.workloads.spec2006 import SPEC2006
from repro.workloads.synthetic import generate_trace

MAPPER = AddressMapper()
ALL_BENCHMARKS = list(SPEC2006.values()) + list(DESKTOP_BENCHMARKS.values())


def _trace_for(spec, instructions=None):
    if instructions is None:
        # Enough instructions for ~400 reads, bounded for the lightest.
        instructions = min(int(400_000 / max(spec.mpki, 0.2)), 3_000_000)
    return generate_trace(spec, MAPPER, instructions, seed=11)


@pytest.mark.parametrize("spec", ALL_BENCHMARKS, ids=lambda s: s.name)
def test_mpki_matches_table(spec):
    trace = _trace_for(spec)
    read_mpki = 1000.0 * trace.read_count / trace.instructions_per_pass
    assert read_mpki == pytest.approx(spec.mpki, rel=0.3)


@pytest.mark.parametrize("spec", ALL_BENCHMARKS, ids=lambda s: s.name)
def test_row_run_locality_matches_table(spec):
    trace = _trace_for(spec)
    reads = [r for r in trace if not r.is_write]
    same_row = 0
    previous = None
    for record in reads:
        decoded = MAPPER.decode(record.address)
        key = (decoded.channel, decoded.bank, decoded.row)
        if previous is not None and key == previous:
            same_row += 1
        previous = key
    rate = same_row / max(1, len(reads) - 1)
    assert rate == pytest.approx(spec.rb_hit_rate, abs=0.1)


@pytest.mark.parametrize(
    "spec",
    [s for s in ALL_BENCHMARKS if s.bank_focus],
    ids=lambda s: s.name,
)
def test_bank_focus_respected(spec):
    trace = _trace_for(spec)
    counts: dict[int, int] = {}
    for record in trace:
        if record.is_write:
            continue
        bank = MAPPER.decode(record.address).bank
        counts[bank] = counts.get(bank, 0) + 1
    top = sum(sorted(counts.values(), reverse=True)[: spec.bank_focus])
    assert top / sum(counts.values()) >= spec.bank_focus_weight - 0.2


@pytest.mark.parametrize("spec", ALL_BENCHMARKS, ids=lambda s: s.name)
def test_trace_structurally_valid(spec):
    trace = _trace_for(spec, instructions=20_000)
    assert trace.memory_operations >= 4
    for record in trace:
        assert record.compute >= 0
        assert record.address >= 0
