"""Tests for the distributed sweep cluster (repro.cluster).

Three layers:

* unit: the lease table (grant/heartbeat/expire/late-complete,
  durable recovery) and rendezvous affinity routing;
* in-process integration: a real coordinator on a loopback port driven
  by runner objects on threads — lease protocol, redelivery, the
  bit-identical acceptance criterion on every store backend;
* subprocess smoke: a LocalCluster of real OS processes where one
  runner is ``kill -9``'d mid-sweep and the sweep still completes,
  and a 3-runner submit storm that must finish with *zero* duplicate
  simulations (the ``stfm_store_proxy_duplicate_puts_total`` metric).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time

import pytest

from repro.cluster.coordinator import (
    ClusterCoordinator,
    CoordinatorConfig,
    _owner,
)
from repro.cluster.leases import LeaseTable
from repro.cluster.runner import ClusterRunner, RunnerConfig
from repro.cluster.supervisor import LocalCluster
from repro.service.client import ServiceClient, parse_metrics
from repro.service.queue import AdmissionQueue


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("STFM_SIM_CACHE_DIR", str(tmp_path / "default-store"))


# -- lease table -------------------------------------------------------------


class TestLeaseTable:
    def test_grant_heartbeat_complete(self, tmp_path):
        table = LeaseTable(tmp_path / "leases", ttl=10.0)
        lease = table.grant("job-1", "d" * 64, "runner-a", now=100.0)
        assert lease.attempt == 1
        assert lease.deadline == 110.0
        assert table.for_job("job-1") is lease
        assert table.active_by_runner() == {"runner-a": 1}

        renewed = table.heartbeat(lease.id, now=105.0)
        assert renewed.deadline == 115.0

        settled = table.complete(lease.id)
        assert settled is lease
        assert table.for_job("job-1") is None
        assert table.completed == {"runner-a": 1}
        assert not list((tmp_path / "leases").glob("*.json"))

    def test_expiry_requeues_and_counts(self, tmp_path):
        table = LeaseTable(tmp_path / "leases", ttl=5.0)
        lease = table.grant("job-1", "d" * 64, "runner-a", now=0.0)
        assert table.expire_due(now=4.9) == []
        due = table.expire_due(now=5.1)
        assert due == [lease]
        assert table.expirations == 1
        assert table.redeliveries == 1
        # The redelivered grant is attempt 2.
        second = table.grant("job-1", "d" * 64, "runner-b", now=6.0)
        assert second.attempt == 2

    def test_late_completion_is_discarded(self, tmp_path):
        table = LeaseTable(tmp_path / "leases", ttl=5.0)
        lease = table.grant("job-1", "d" * 64, "runner-a", now=0.0)
        table.expire_due(now=10.0)
        assert table.complete(lease.id) is None
        assert table.late_completions == 1

    def test_double_lease_of_one_job_is_refused(self, tmp_path):
        table = LeaseTable(None, ttl=5.0)
        table.grant("job-1", "d" * 64, "runner-a", now=0.0)
        with pytest.raises(ValueError, match="already leased"):
            table.grant("job-1", "d" * 64, "runner-b", now=0.0)

    def test_recovery_discards_stale_leases(self, tmp_path):
        first = LeaseTable(tmp_path / "leases", ttl=5.0)
        first.grant("job-1", "d" * 64, "runner-a", now=0.0)
        first.grant("job-2", "e" * 64, "runner-b", now=0.0)
        # New incarnation: monotonic deadlines from the old process are
        # meaningless, so both persisted leases count as expired.
        second = LeaseTable(tmp_path / "leases", ttl=5.0)
        assert second.recover() == 2
        assert second.expirations == 2
        assert len(second) == 0
        assert not list((tmp_path / "leases").glob("*.json"))
        # Attempt numbering survives: the re-granted job is attempt 2.
        lease = second.grant("job-1", "d" * 64, "runner-c", now=0.0)
        assert lease.attempt == 2


class TestAffinity:
    def test_rendezvous_owner_is_stable_under_churn(self):
        runners = ["runner-0", "runner-1", "runner-2"]
        digests = [f"{i:064x}" for i in range(40)]
        owners = {d: _owner(d, runners) for d in digests}
        assert len(set(owners.values())) > 1  # spreads across runners
        # Removing one runner only moves the keys it owned.
        survivors = ["runner-0", "runner-2"]
        for digest, owner in owners.items():
            if owner in survivors:
                assert _owner(digest, survivors) == owner

    def test_try_take_prefers_chosen_job(self):
        queue = AdmissionQueue(limit=8)
        for job_id in ("a", "b", "c"):
            queue.submit(job_id)
        assert queue.try_take(chooser=lambda pending: "b") == "b"
        assert queue.try_take() == "a"  # default: oldest
        assert queue.try_take(chooser=lambda pending: None) is None
        assert queue.depth == 1

    def test_requeue_goes_to_the_front_without_recount(self):
        queue = AdmissionQueue(limit=8)
        queue.submit("a")
        queue.submit("b")
        taken = queue.try_take()
        queue.requeue(taken)
        assert queue.unfinished == 2  # not re-counted
        assert queue.try_take() == "a"  # redelivered first


# -- in-process integration --------------------------------------------------


@contextlib.contextmanager
def running_coordinator(tmp_path, **overrides):
    settings = dict(
        host="127.0.0.1",
        port=0,
        queue_limit=16,
        cache_dir=str(tmp_path / "store"),
        state_dir=str(tmp_path / "state"),
        lease_ttl=10.0,
    )
    settings.update(overrides)
    service = ClusterCoordinator(CoordinatorConfig(**settings))
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(service.start(), loop).result(30)
        yield service, ServiceClient(f"http://127.0.0.1:{service.port}")
    finally:
        asyncio.run_coroutine_threadsafe(
            service.drain_and_stop(), loop
        ).result(120)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


def _spec(seed: int, budget: int = 1_500) -> dict:
    return {
        "kind": "workload",
        "benchmarks": ["mcf", "hmmer"],
        "policy": "fr-fcfs",
        "budget": budget,
        "seed": seed,
    }


class TestLeaseProtocol:
    def test_lease_execute_complete_round_trip(self, tmp_path):
        with running_coordinator(tmp_path) as (service, client):
            view = client.submit(_spec(1))
            status, _, lease = client.request(
                "POST", "/v1/leases", body={"runner": "r-test"}
            )
            assert status == 200
            assert lease["job_id"] == view["id"]
            assert lease["attempt"] == 1
            assert client.job(view["id"])["status"] == "running"

            status, _, beat = client.request(
                "POST", f"/v1/leases/{lease['lease_id']}/heartbeat"
            )
            assert status == 200 and beat["ttl"] == 10.0

            status, _, done = client.request(
                "POST", f"/v1/leases/{lease['lease_id']}/complete",
                body={"runner": "r-test", "wall": 0.5,
                      "result": {"kind": "workload", "fake": True},
                      "engine": {"jobs_run": 3, "hits": 0}},
            )
            assert status == 200 and done["accepted"] is True
            final = client.result(view["id"])
            assert final["status"] == "done"
            assert final["runner"] == "r-test"
            assert final["result"] == {"kind": "workload", "fake": True}

    def test_empty_queue_leases_204(self, tmp_path):
        with running_coordinator(tmp_path) as (_service, client):
            status, _, _ = client.request(
                "POST", "/v1/leases", body={"runner": "r-idle"}
            )
            assert status == 204

    def test_expired_lease_redelivers_and_discards_late_result(
        self, tmp_path
    ):
        with running_coordinator(
            tmp_path, lease_ttl=0.3
        ) as (service, client):
            view = client.submit(_spec(2))
            _, _, lease = client.request(
                "POST", "/v1/leases", body={"runner": "r-dead"}
            )
            # No heartbeats: wait for the sweep to expire the lease.
            deadline = time.time() + 10
            while time.time() < deadline:
                if client.job(view["id"])["status"] == "queued":
                    break
                time.sleep(0.05)
            assert client.job(view["id"])["status"] == "queued"

            # The late completion from the dead runner is discarded.
            status, _, body = client.request(
                "POST", f"/v1/leases/{lease['lease_id']}/complete",
                body={"runner": "r-dead", "result": {"stale": True}},
            )
            assert status == 410 and body["accepted"] is False
            assert client.job(view["id"])["status"] == "queued"

            # Redelivery: a live runner gets attempt 2 and settles it.
            _, _, second = client.request(
                "POST", "/v1/leases", body={"runner": "r-live"}
            )
            assert second["job_id"] == view["id"]
            assert second["attempt"] == 2
            client.request(
                "POST", f"/v1/leases/{second['lease_id']}/complete",
                body={"runner": "r-live", "result": {"stale": False}},
            )
            final = client.result(view["id"])
            assert final["status"] == "done"
            assert final["result"] == {"stale": False}
            assert final["attempts"] == 2
            metrics = parse_metrics(client.metrics())
            assert metrics["stfm_cluster_redeliveries_total"] == 1
            assert metrics["stfm_cluster_late_completions_total"] == 1

    def test_runner_object_executes_real_jobs(self, tmp_path):
        with running_coordinator(tmp_path) as (service, client):
            views = [client.submit(_spec(seed)) for seed in (1, 2)]
            runner = ClusterRunner(RunnerConfig(
                coordinator=f"http://127.0.0.1:{service.port}",
                runner_id="r-embedded",
                poll=0.05,
                max_jobs=2,
            ))
            assert runner.run() == 0
            for view in views:
                final = client.result(view["id"])
                assert final["status"] == "done"
                assert final["runner"] == "r-embedded"
            metrics = parse_metrics(client.metrics())
            assert (
                metrics['stfm_cluster_runner_sims_total{runner="r-embedded"}']
                == 6  # 2 jobs x (2 run-alone + 1 shared)
            )


class TestBitIdentical:
    @pytest.mark.parametrize("backend", ["fs", "sqlite"])
    def test_fig3_through_cluster_matches_single_process(
        self, tmp_path, backend
    ):
        """The acceptance criterion: a fig3 run through the cluster
        (runner mounting the coordinator's store over the HTTP proxy)
        is bit-identical to single-process execution, on every store
        backend."""
        from repro.experiments import run_experiment
        from repro.experiments.io import result_to_dict

        direct = result_to_dict(run_experiment("fig3", scale="tiny"))
        cache_dir = (
            str(tmp_path / "store")
            if backend == "fs"
            else f"sqlite:{tmp_path / 'store.sqlite'}"
        )
        spec = {"kind": "experiment", "experiment": "fig3", "scale": "tiny"}
        with running_coordinator(
            tmp_path, cache_dir=cache_dir
        ) as (service, client):
            view = client.submit(spec)
            runner = ClusterRunner(RunnerConfig(
                coordinator=f"http://127.0.0.1:{service.port}",
                runner_id="r-fig3",
                poll=0.05,
                max_jobs=1,
            ))
            assert runner.run() == 0
            final = client.result(view["id"])
            assert final["status"] == "done"
            assert final["result"]["rows"] == direct["rows"]

    def test_fig3_under_lease_sanitizer_bit_identical(
        self, tmp_path, monkeypatch
    ):
        """The same fig3-through-cluster run with the lease sanitizer
        shadow-checking every transition: zero violations (a violation
        raises inside the coordinator and fails the run) and results
        bit-identical to the unsanitized single-process execution."""
        from repro.experiments import run_experiment
        from repro.experiments.io import result_to_dict

        direct = result_to_dict(run_experiment("fig3", scale="tiny"))
        monkeypatch.setenv("STFM_SIM_LEASE_SANITIZE", "1")
        spec = {"kind": "experiment", "experiment": "fig3", "scale": "tiny"}
        with running_coordinator(
            tmp_path, cache_dir=str(tmp_path / "store")
        ) as (service, client):
            sanitizer = service.leases.sanitizer
            assert sanitizer is not None
            view = client.submit(spec)
            runner = ClusterRunner(RunnerConfig(
                coordinator=f"http://127.0.0.1:{service.port}",
                runner_id="r-sanitized",
                poll=0.05,
                max_jobs=1,
            ))
            assert runner.run() == 0
            final = client.result(view["id"])
            assert final["status"] == "done"
            assert final["result"]["rows"] == direct["rows"]
            assert sanitizer.transitions_checked > 0
            assert sanitizer.active == {}  # every lease settled/expired
            assert sanitizer.settled  # and at least one settled cleanly


# -- subprocess smoke --------------------------------------------------------


class TestSubprocessCluster:
    def test_kill_dash_nine_mid_sweep_still_completes(self, tmp_path):
        """The CI smoke scenario: 1 coordinator + 2 runners, SIGKILL one
        runner holding a lease, and the sweep still completes with the
        expiry/redelivery counters showing how."""
        cluster = LocalCluster(
            runners=2,
            cache_dir=str(tmp_path / "cache"),
            state_dir=str(tmp_path / "state"),
            lease_ttl=2.0,
            poll=0.05,
        )
        with cluster:
            client = ServiceClient(cluster.url)
            views = [
                client.submit(_spec(seed, budget=20_000))
                for seed in range(1, 7)
            ]
            deadline = time.time() + 60
            while time.time() < deadline:
                _, _, topo = client.request("GET", "/v1/cluster")
                if topo["runners"].get("runner-0", {}).get(
                    "active_leases", 0
                ):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("runner-0 never acquired a lease")
            cluster.kill_runner(0)

            done = [client.wait(v["id"], timeout=180) for v in views]
            assert all(v["status"] == "done" for v in done)
            metrics = parse_metrics(client.metrics())
            assert metrics["stfm_cluster_lease_expirations_total"] >= 1
            assert metrics["stfm_cluster_redeliveries_total"] >= 1
            # At-least-once redelivery, exactly-once settlement: the
            # killed job shows attempts >= 2 and a surviving runner.
            redelivered = [v for v in done if v.get("attempts", 1) >= 2]
            assert redelivered
            assert all(v["runner"] == "runner-1" for v in redelivered)

    def test_submit_storm_three_runners_zero_duplicate_sims(self, tmp_path):
        """Saturating storm onto a 3-runner cluster: every job lands,
        and /metrics proves no sub-job was simulated twice (zero
        duplicate puts into the shared store) even with coalesced
        duplicate submissions in the mix."""
        cluster = LocalCluster(
            runners=3,
            cache_dir=str(tmp_path / "cache"),
            state_dir=str(tmp_path / "state"),
            lease_ttl=10.0,
            queue_limit=6,  # smaller than the storm: 429s + retries
            poll=0.05,
        )
        with cluster:
            client = ServiceClient(cluster.url, retries=8, backoff=0.1)
            views = []
            for seed in range(1, 10):
                views.append(client.submit(_spec(seed)))
                views.append(client.submit(_spec(seed)))  # dup: coalesces
            done = [client.wait(v["id"], timeout=180) for v in views]
            assert all(v["status"] == "done" for v in done)
            assert len({v["id"] for v in done}) == 9

            metrics = parse_metrics(client.metrics())
            assert metrics["stfm_store_proxy_duplicate_puts_total"] == 0
            sims = sum(
                value
                for name, value in metrics.items()
                if name.startswith("stfm_cluster_runner_sims_total")
            )
            # 9 distinct jobs x (2 run-alone + 1 shared) sub-jobs, each
            # simulated exactly once across the whole cluster.
            assert sims == 27
            granted = [
                name
                for name in metrics
                if name.startswith("stfm_cluster_leases_granted_total")
            ]
            assert len(granted) >= 2  # the storm actually spread out
