"""Tests for the STFM scheduling policy (Sections 3.2.1 and 3.3)."""

import pytest

from repro.core.stfm import StfmPolicy
from tests.conftest import ControllerHarness


def make_harness(num_threads=2, **policy_kwargs):
    policy = StfmPolicy(num_threads, **policy_kwargs)
    harness = ControllerHarness(policy=policy, num_threads=num_threads)
    return harness, policy


class TestConstruction:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            StfmPolicy(2, alpha=0.5)

    def test_defaults(self):
        policy = StfmPolicy(4)
        assert policy.alpha == pytest.approx(1.10)  # paper Section 6.3
        # The paper used gamma = 1/2 for its accounting; our
        # waiting-basis accounting calibrates at 1.0 (DESIGN.md).
        assert policy.gamma == pytest.approx(1.0)
        assert policy.registers.interval_length == 1 << 24


class TestModeSelection:
    def test_throughput_mode_without_contention(self):
        harness, policy = make_harness()
        harness.submit(0, bank=0, row=1)
        harness.tick()
        assert not policy.fairness_mode

    def test_throughput_mode_when_slowdowns_balanced(self):
        harness, policy = make_harness()
        stalls = {0: 1000, 1: 1000}
        policy.set_tshared_source(lambda t: stalls[t])
        harness.submit(0, bank=0, row=1)
        harness.submit(1, bank=1, row=1)
        harness.tick()
        assert policy.last_unfairness == pytest.approx(1.0)
        assert not policy.fairness_mode

    def test_fairness_mode_when_unfairness_exceeds_alpha(self):
        harness, policy = make_harness(alpha=1.1)
        stalls = {0: 1000, 1: 1000}
        policy.set_tshared_source(lambda t: stalls[t])
        policy.registers.add_interference(1, 500.0)  # thread 1 slowed 2x
        harness.submit(0, bank=0, row=1)
        harness.submit(1, bank=1, row=1)
        harness.tick()
        assert policy.fairness_mode
        assert policy.max_slowdown_thread == 1
        assert policy.last_unfairness == pytest.approx(2.0)

    def test_large_alpha_disables_fairness(self):
        """System software can disable hardware fairness (Section 3.3)."""
        harness, policy = make_harness(alpha=50.0)
        stalls = {0: 1000, 1: 1000}
        policy.set_tshared_source(lambda t: stalls[t])
        policy.registers.add_interference(1, 900.0)
        harness.submit(0, bank=0, row=1)
        harness.submit(1, bank=1, row=1)
        harness.tick()
        assert not policy.fairness_mode

    def test_only_threads_with_requests_considered(self):
        harness, policy = make_harness(num_threads=3)
        stalls = {0: 1000, 1: 1000, 2: 1000}
        policy.set_tshared_source(lambda t: stalls[t])
        policy.registers.add_interference(2, 900.0)  # slowed, but idle
        harness.submit(0, bank=0, row=1)
        harness.submit(1, bank=1, row=1)
        harness.tick()
        assert not policy.fairness_mode


class TestFairnessRulePrioritization:
    def test_tmax_thread_serviced_first(self):
        """Under the fairness rule, the most slowed thread's younger
        row-conflict request beats another thread's older row hit."""
        harness, policy = make_harness(alpha=1.05)
        stalls = {0: 10_000, 1: 10_000}
        policy.set_tshared_source(lambda t: stalls[t])
        # Open row 1 in bank 0 for thread 0.
        harness.submit(0, bank=0, row=1, column=0)
        harness.run_until_done()
        harness.pending.clear()
        # Wait out tRAS so the victim's precharge is immediately ready
        # (STFM prioritizes Tmax's *ready* commands; it cannot conjure
        # readiness past timing constraints).
        harness.tick(harness.timing.ras // harness.timing.dram_cycle + 1)
        # Make thread 1 the most slowed-down thread.
        policy.registers.add_interference(1, 5_000.0)
        hit = harness.submit(0, bank=0, row=1, column=1)
        victim = harness.submit(1, bank=0, row=2)
        harness.run_until_done()
        assert victim.completed_at < hit.completed_at

    def test_frfcfs_rules_apply_in_throughput_mode(self):
        harness, policy = make_harness(alpha=10.0)
        harness.submit(0, bank=0, row=1, column=0)
        harness.run_until_done()
        harness.pending.clear()
        hit = harness.submit(0, bank=0, row=1, column=1)
        conflict = harness.submit(1, bank=0, row=2)
        harness.run_until_done()
        assert hit.completed_at < conflict.completed_at


class TestDiagnostics:
    def test_fairness_rule_fraction(self):
        harness, policy = make_harness()
        harness.submit(0, bank=0, row=1)
        harness.run_until_done()
        assert 0.0 <= policy.fairness_rule_fraction <= 1.0

    def test_slowdown_of_defaults_to_one(self):
        _, policy = make_harness()
        assert policy.slowdown_of(0) == 1.0


class TestEndToEndInterferenceTracking:
    def test_victim_accrues_interference(self):
        harness, policy = make_harness()
        # Thread 0's row hits are serviced first (throughput mode uses
        # FR-FCFS); thread 1 waits behind them and accrues interference,
        # while thread 0 — never delayed — accrues none.
        for i in range(6):
            harness.submit(0, bank=0, row=1, column=i)
            harness.submit(1, bank=0, row=2, column=i)
        harness.run_until_done()
        registers = policy.registers
        assert registers.threads[1].t_interference > 0
        assert (
            registers.threads[1].t_interference
            > registers.threads[0].t_interference
        )
