"""Tests for traces and the streaming trace cursor."""

import pytest

from repro.cpu.trace import Trace, TraceCursor, TraceRecord


def simple_trace(loop=True) -> Trace:
    return Trace(
        [
            TraceRecord(compute=10, is_write=False, address=0x1000),
            TraceRecord(compute=0, is_write=True, address=0x2000),
            TraceRecord(compute=5, is_write=False, address=0x3000, dependent=True),
        ],
        loop=loop,
    )


class TestTrace:
    def test_lengths(self):
        trace = simple_trace()
        assert len(trace) == 3
        assert trace.memory_operations == 3
        assert trace.read_count == 2
        assert trace.instructions_per_pass == 10 + 1 + 0 + 1 + 5 + 1

    def test_mpki(self):
        trace = simple_trace()
        assert trace.mpki() == pytest.approx(3000 / 18)

    def test_tuple_records_coerced(self):
        trace = Trace([(3, False, 0x40, False)])
        assert isinstance(trace.records[0], TraceRecord)

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Trace([TraceRecord(-1, False, 0)])

    def test_empty_trace(self):
        trace = Trace([])
        assert trace.instructions_per_pass == 0
        assert trace.mpki() == 0.0


class TestTraceCursor:
    def test_compute_then_memory(self):
        cursor = TraceCursor(simple_trace())
        assert cursor.peek_compute() == 10
        assert cursor.peek_memory() is None  # compute not yet drained
        assert cursor.take_compute(4) == 4
        assert cursor.take_compute(100) == 6
        record = cursor.peek_memory()
        assert record is not None and record.address == 0x1000
        cursor.take_memory()
        assert cursor.peek_compute() == 0  # next record has 0 compute
        assert cursor.peek_memory().is_write

    def test_looping(self):
        cursor = TraceCursor(simple_trace(loop=True))
        for _ in range(2):  # two full passes
            for _ in range(3):
                cursor.take_compute(cursor.peek_compute())
                cursor.take_memory()
        assert cursor.passes == 2
        assert not cursor.exhausted

    def test_non_looping_exhausts(self):
        cursor = TraceCursor(simple_trace(loop=False))
        for _ in range(3):
            cursor.take_compute(cursor.peek_compute())
            cursor.take_memory()
        assert cursor.exhausted
        assert cursor.peek_compute() == 0
        assert cursor.peek_memory() is None

    def test_take_memory_requires_drained_compute(self):
        cursor = TraceCursor(simple_trace())
        with pytest.raises(RuntimeError):
            cursor.take_memory()

    def test_empty_trace_exhausted_immediately(self):
        cursor = TraceCursor(Trace([]))
        assert cursor.exhausted
