"""Tests for refresh, closed-page policy, estimator basis and result IO."""

import pytest

from repro.core.estimator import InterferenceEstimator
from repro.core.stfm import StfmPolicy
from repro.experiments.base import ExperimentResult
from repro.experiments.io import load_results, result_to_dict, save_results
from repro.sim.config import SystemConfig
from tests.conftest import ControllerHarness


class TestRefresh:
    def test_refresh_issued_periodically(self):
        harness = ControllerHarness(refresh_enabled=True)
        ticks_per_refi = harness.timing.refi // harness.timing.dram_cycle
        harness.tick(3 * ticks_per_refi + 2)
        assert harness.controller.refreshes_issued in (2, 3)

    def test_refresh_closes_rows(self):
        harness = ControllerHarness(refresh_enabled=True)
        harness.submit(0, bank=0, row=1)
        harness.run_until_done()
        assert harness.controller.channels[0].banks[0].open_row == 1
        harness.tick(harness.timing.refi // harness.timing.dram_cycle + 1)
        assert harness.controller.channels[0].banks[0].open_row is None

    def test_requests_complete_across_refresh(self):
        harness = ControllerHarness(refresh_enabled=True)
        ticks_per_refi = harness.timing.refi // harness.timing.dram_cycle
        harness.tick(ticks_per_refi - 1)  # land just before the refresh
        harness.submit(0, bank=0, row=1)
        done = harness.run_until_done()
        assert done[0].completed_at is not None

    def test_disabled_by_default(self):
        harness = ControllerHarness()
        harness.tick(harness.timing.refi // harness.timing.dram_cycle + 5)
        assert harness.controller.refreshes_issued == 0


class TestClosedPagePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerHarness(page_policy="half-open")
        with pytest.raises(ValueError):
            SystemConfig(page_policy="half-open")

    def test_row_closed_after_last_column(self):
        harness = ControllerHarness(page_policy="closed")
        harness.submit(0, bank=0, row=1)
        harness.run_until_done()
        assert harness.controller.channels[0].banks[0].open_row is None

    def test_row_kept_open_for_pending_same_row(self):
        harness = ControllerHarness(page_policy="closed")
        first = harness.submit(0, bank=0, row=1, column=0)
        second = harness.submit(0, bank=0, row=1, column=1)
        harness.run_until_done()
        # The second request was serviced as a row hit (the row stayed
        # open between them), and the bank precharged after it.
        assert second.service_outcome().name == "ROW_HIT"
        assert harness.controller.channels[0].banks[0].open_row is None

    def test_open_page_is_default_and_keeps_rows(self):
        harness = ControllerHarness()
        harness.submit(0, bank=0, row=1)
        harness.run_until_done()
        assert harness.controller.channels[0].banks[0].open_row == 1


class TestEstimatorBasis:
    def test_basis_validation(self):
        policy = StfmPolicy(2)
        harness = ControllerHarness(policy=policy)
        with pytest.raises(ValueError):
            InterferenceEstimator(
                policy.registers, harness.controller, basis="psychic"
            )

    def test_registry_forwards_basis(self):
        from repro.schedulers.registry import make_policy

        policy = make_policy("stfm", num_threads=2, interference_basis="ready")
        assert policy.interference_basis == "ready"

    def test_ready_basis_accrues_less_interference(self):
        """The literal reading misses interference-induced unreadiness,
        so it never accrues more than the waiting basis."""
        totals = {}
        for basis in ("waiting", "ready"):
            policy = StfmPolicy(2, interference_basis=basis)
            harness = ControllerHarness(policy=policy, num_threads=2)
            for column in range(8):
                harness.submit(0, bank=0, row=1, column=column)
            harness.submit(1, bank=0, row=2)
            harness.run_until_done()
            totals[basis] = policy.registers.threads[1].t_interference
        assert totals["ready"] <= totals["waiting"]
        assert totals["waiting"] > 0


class TestResultsIo:
    def make_result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="fig6",
            title="t",
            rows=[{"policy": "STFM", "unfairness": 1.2, "weights": (1, 2)}],
            text="table",
            paper_reference="ref",
            extras={"seed": 0},
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        save_results([self.make_result()], path)
        loaded = load_results(path)
        assert len(loaded) == 1
        assert loaded[0]["experiment_id"] == "fig6"
        assert loaded[0]["rows"][0]["unfairness"] == 1.2
        # Tuples were coerced to lists for JSON.
        assert loaded[0]["rows"][0]["weights"] == [1, 2]

    def test_result_to_dict_no_text(self):
        payload = result_to_dict(self.make_result())
        assert "text" not in payload  # tables are for the console

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_results(path)

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "out.json"
        assert main(["run", "fig1", "--scale", "tiny", "--json", str(out)]) == 0
        assert load_results(out)[0]["experiment_id"] == "fig1"


class TestAblationExperiments:
    @pytest.mark.parametrize(
        "experiment_id",
        [
            "ablate-gamma",
            "ablate-estimator",
            "ablate-cap",
            "ablate-page-policy",
            "ablate-refresh",
        ],
    )
    def test_runs_at_tiny_scale(self, experiment_id):
        from repro.experiments import run_experiment
        from repro.experiments.base import Scale

        result = run_experiment(experiment_id, scale=Scale(budget=2_000))
        assert result.rows
        assert result.text.strip()
