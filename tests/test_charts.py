"""Tests for the terminal bar-chart renderer."""

import pytest
from hypothesis import given, strategies as st

from repro.experiments.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10, unit="x")
        lines = text.splitlines()
        assert len(lines) == 2
        assert "1.00x" in lines[0]
        assert "2.00x" in lines[1]
        # The larger value gets the full width.
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_title(self):
        text = bar_chart(["a"], [1.0], title="Slowdowns")
        assert text.splitlines()[0] == "Slowdowns"

    def test_labels_aligned(self):
        text = bar_chart(["x", "long-label"], [1.0, 1.0])
        lines = text.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_zero_values_ok(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0.00" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=12
        )
    )
    def test_never_exceeds_width(self, values):
        labels = [f"t{i}" for i in range(len(values))]
        for line in bar_chart(labels, values, width=20).splitlines():
            assert line.count("█") <= 20


class TestGroupedBarChart:
    def test_shared_scale_across_groups(self):
        text = grouped_bar_chart(
            {"A": {"t": 1.0}, "B": {"t": 4.0}}, width=8
        )
        lines = text.splitlines()
        assert lines[0] == "A:"
        assert lines[1].count("█") == 2  # 1.0 / 4.0 of width 8
        assert lines[3].count("█") == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})
        with pytest.raises(ValueError):
            grouped_bar_chart({"A": {}})
        with pytest.raises(ValueError):
            grouped_bar_chart({"A": {"t": -1.0}})
