"""Tests for the benchmark registry and workload mixes."""

import pytest

from repro.workloads import (
    DESKTOP_BENCHMARKS,
    SPEC2006,
    benchmark,
    benchmarks_by_category,
    category_pattern_workloads,
    intensive_order,
    sixteen_core_workloads,
    workload_name,
)
from repro.workloads.mixes import sample_workloads_4core, sample_workloads_8core


class TestSpec2006Registry:
    def test_twenty_six_benchmarks(self):
        """Table 3 lists 26 benchmarks (3 of the 29 SPEC2006 programs
        were excluded by the authors)."""
        assert len(SPEC2006) == 26

    def test_table3_headline_values(self):
        mcf = SPEC2006["mcf"]
        assert (mcf.mcpi, mcf.mpki, mcf.rb_hit_rate, mcf.category) == (
            10.02,
            101.06,
            0.419,
            2,
        )
        libq = SPEC2006["libquantum"]
        assert libq.rb_hit_rate == 0.984 and libq.streaming

    def test_categories_cover_all_four(self):
        for category in range(4):
            assert benchmarks_by_category(category)

    def test_category_consistency(self):
        """Categories encode (intensive, high-RB) per the paper."""
        for spec in SPEC2006.values():
            assert spec.intensive == (spec.category >= 2)
            assert spec.high_locality == (spec.category in (1, 3))

    def test_case_study_annotations(self):
        assert SPEC2006["dealII"].bank_focus == 2
        assert SPEC2006["astar"].bank_focus == 2
        assert SPEC2006["omnetpp"].dependence > SPEC2006["libquantum"].dependence

    def test_lookup_and_unknown(self):
        assert benchmark("mcf") is SPEC2006["mcf"]
        assert benchmark("matlab") is DESKTOP_BENCHMARKS["matlab"]
        with pytest.raises(KeyError):
            benchmark("doom3")

    def test_with_overrides(self):
        tweaked = SPEC2006["mcf"].with_overrides(mpki=50.0)
        assert tweaked.mpki == 50.0
        assert SPEC2006["mcf"].mpki == 101.06  # original untouched

    def test_intensive_order_sorted_by_mcpi(self):
        ordered = intensive_order()
        assert ordered[0].name == "mcf"
        assert ordered[-1].name == "povray"
        mcpis = [s.mcpi for s in ordered]
        assert mcpis == sorted(mcpis, reverse=True)

    def test_invalid_category(self):
        with pytest.raises(ValueError):
            benchmarks_by_category(4)


class TestDesktop:
    def test_table4_values(self):
        assert DESKTOP_BENCHMARKS["matlab"].mpki == 60.26
        assert DESKTOP_BENCHMARKS["xml-parser"].rb_hit_rate == 0.958
        assert DESKTOP_BENCHMARKS["iexplorer"].bank_focus == 2
        assert DESKTOP_BENCHMARKS["instant-messenger"].bank_focus == 3


class TestMixes:
    def test_full_4core_enumeration_is_256(self):
        workloads = category_pattern_workloads(4)
        assert len(workloads) == 256

    def test_sampled_workloads_deterministic(self):
        a = category_pattern_workloads(8, count=5, seed=3)
        b = category_pattern_workloads(8, count=5, seed=3)
        assert a == b
        c = category_pattern_workloads(8, count=5, seed=4)
        assert a != c

    def test_sampled_workloads_have_right_size(self):
        for workload in category_pattern_workloads(8, count=4):
            assert len(workload) == 8
            for name in workload:
                assert name in SPEC2006

    def test_sixteen_core_workloads(self):
        named = sixteen_core_workloads()
        assert set(named) == {"high16", "high8+low8", "low16"}
        ordered = [s.name for s in intensive_order()]
        assert named["high16"] == ordered[:16]
        assert named["low16"] == ordered[-16:]
        assert len(named["high8+low8"]) == 16

    def test_sample_workloads(self):
        assert len(sample_workloads_4core(count=10)) == 10
        assert len(sample_workloads_8core(count=10)) == 10
        assert len(sample_workloads_4core(count=14)) == 14
        for workload in sample_workloads_8core(count=10):
            assert len(workload) == 8

    def test_workload_name(self):
        assert workload_name(["a", "b"]) == "a+b"

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            category_pattern_workloads(0)
